#include "uavdc/util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "uavdc/util/check.hpp"

namespace uavdc::util {

void Accumulator::add(double x) {
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    sum_ += x;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
}

double Accumulator::variance() const {
    return n_ >= 2 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

double Accumulator::stderr_mean() const {
    return n_ >= 2 ? stddev() / std::sqrt(static_cast<double>(n_)) : 0.0;
}

double Accumulator::ci95_halfwidth() const { return 1.96 * stderr_mean(); }

void Accumulator::merge(const Accumulator& o) {
    if (o.n_ == 0) return;
    if (n_ == 0) {
        *this = o;
        return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(o.n_);
    const double d = o.mean_ - mean_;
    const double n = na + nb;
    mean_ += d * nb / n;
    m2_ += o.m2_ + d * d * na * nb / n;
    n_ += o.n_;
    sum_ += o.sum_;
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
}

double mean(std::span<const double> xs) {
    if (xs.empty()) return 0.0;
    double s = 0.0;
    for (double x : xs) s += x;
    return s / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
    if (xs.size() < 2) return 0.0;
    const double m = mean(xs);
    double s = 0.0;
    for (double x : xs) s += (x - m) * (x - m);
    return std::sqrt(s / static_cast<double>(xs.size() - 1));
}

double median(std::vector<double> xs) { return quantile(std::move(xs), 0.5); }

double quantile(std::vector<double> xs, double q) {
    if (xs.empty()) return 0.0;
    UAVDC_REQUIRE(q >= 0.0 && q <= 1.0) << "quantile q=" << q;
    std::sort(xs.begin(), xs.end());
    const double pos = q * static_cast<double>(xs.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, xs.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

}  // namespace uavdc::util
