#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace uavdc::util {

/// Streaming accumulator (Welford) for mean / variance / extrema.
/// Used by the benchmark harness to aggregate the paper's 15-instance means.
class Accumulator {
  public:
    void add(double x);

    [[nodiscard]] std::size_t count() const { return n_; }
    [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
    /// Sample variance (n-1 denominator); 0 for fewer than 2 samples.
    [[nodiscard]] double variance() const;
    [[nodiscard]] double stddev() const;
    /// Standard error of the mean.
    [[nodiscard]] double stderr_mean() const;
    /// Half-width of the ~95% normal confidence interval (1.96 * SE).
    [[nodiscard]] double ci95_halfwidth() const;
    [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
    [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
    [[nodiscard]] double sum() const { return sum_; }

    /// Merge another accumulator (parallel reduction).
    void merge(const Accumulator& o);

  private:
    std::size_t n_{0};
    double mean_{0.0};
    double m2_{0.0};
    double min_{0.0};
    double max_{0.0};
    double sum_{0.0};
};

/// Arithmetic mean of a sample; 0 for an empty span.
[[nodiscard]] double mean(std::span<const double> xs);
/// Sample standard deviation (n-1); 0 for fewer than 2 samples.
[[nodiscard]] double stddev(std::span<const double> xs);
/// Median (averages middle pair for even sizes); 0 for an empty span.
[[nodiscard]] double median(std::vector<double> xs);
/// q-th quantile via linear interpolation, q in [0,1].
[[nodiscard]] double quantile(std::vector<double> xs, double q);

}  // namespace uavdc::util
