#include "uavdc/util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace uavdc::util {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
    if (headers_.empty()) {
        throw std::invalid_argument("Table: need at least one column");
    }
}

void Table::add_row(std::vector<std::string> cells) {
    if (cells.size() != headers_.size()) {
        throw std::invalid_argument("Table: row width mismatch");
    }
    rows_.push_back(std::move(cells));
}

std::string Table::fmt(double v, int digits) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
    std::string s(buf);
    if (s.find('.') != std::string::npos) {
        // Trim trailing zeros but keep at least one decimal digit.
        std::size_t last = s.find_last_not_of('0');
        if (s[last] == '.') ++last;
        s.erase(last + 1);
    }
    return s;
}

std::string Table::to_string(int indent) const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
        widths[c] = headers_[c].size();
    }
    for (const auto& row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            widths[c] = std::max(widths[c], row[c].size());
        }
    }
    const std::string pad(static_cast<std::size_t>(std::max(0, indent)), ' ');
    std::ostringstream os;
    auto emit_row = [&](const std::vector<std::string>& row) {
        os << pad;
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c) os << "  ";
            os << row[c];
            for (std::size_t k = row[c].size(); k < widths[c]; ++k) os << ' ';
        }
        os << '\n';
    };
    emit_row(headers_);
    os << pad;
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c) {
        total += widths[c] + (c ? 2 : 0);
    }
    os << std::string(total, '-') << '\n';
    for (const auto& row : rows_) emit_row(row);
    return os.str();
}

void Table::print(std::ostream& os, int indent) const {
    os << to_string(indent);
}

}  // namespace uavdc::util
