#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace uavdc::util {

/// Aligned console table used by the figure harnesses to print paper-style
/// result rows (e.g. "E[J]  Alg1[GB]  Benchmark[GB]").
class Table {
  public:
    /// Column headers fix the column count; rows must match it.
    explicit Table(std::vector<std::string> headers);

    void add_row(std::vector<std::string> cells);

    /// Convenience: stringify a mixed row with fixed float precision.
    template <typename... Ts>
    void add_row_of(const Ts&... vals) {
        std::vector<std::string> cells;
        cells.reserve(sizeof...(vals));
        (cells.push_back(format_cell(vals)), ...);
        add_row(std::move(cells));
    }

    [[nodiscard]] std::size_t num_rows() const { return rows_.size(); }
    [[nodiscard]] std::size_t num_cols() const { return headers_.size(); }

    /// Render with padded columns, a header rule, and `indent` leading spaces.
    [[nodiscard]] std::string to_string(int indent = 0) const;

    /// Print to a stream.
    void print(std::ostream& os, int indent = 0) const;

    /// Format a double with `digits` significant decimals, trimming noise.
    [[nodiscard]] static std::string fmt(double v, int digits = 3);

  private:
    template <typename T>
    static std::string format_cell(const T& v) {
        if constexpr (std::is_convertible_v<T, std::string>) {
            return std::string(v);
        } else if constexpr (std::is_floating_point_v<T>) {
            return fmt(static_cast<double>(v));
        } else {
            return std::to_string(v);
        }
    }

    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

}  // namespace uavdc::util
