#include "uavdc/util/thread_pool.hpp"

#include <algorithm>

namespace uavdc::util {

ThreadPool::ThreadPool(std::size_t threads) {
    if (threads == 0) {
        threads = std::max(1u, std::thread::hardware_concurrency());
    }
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i) {
        workers_.emplace_back([this] { worker_loop(); });
    }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
    {
        std::lock_guard lock(mu_);
        stopping_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) {
        if (w.joinable()) w.join();
    }
}

void ThreadPool::worker_loop() {
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock lock(mu_);
            cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty()) {
                if (stopping_) return;
                continue;
            }
            task = std::move(queue_.front());
            queue_.pop_front();
            ++active_;
        }
        task();
        {
            std::lock_guard lock(mu_);
            --active_;
            if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
        }
    }
}

void ThreadPool::wait_idle() {
    std::unique_lock lock(mu_);
    idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

bool ThreadPool::on_worker_thread() const {
    const auto me = std::this_thread::get_id();
    for (const auto& w : workers_) {
        if (w.get_id() == me) return true;
    }
    return false;
}

ThreadPool& global_pool() {
    static ThreadPool pool;
    return pool;
}

}  // namespace uavdc::util
