#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "uavdc/util/check.hpp"

namespace uavdc::util {

/// Fixed-size worker pool. The planners use it to score candidate hovering
/// locations in parallel and the bench harness uses it to evaluate the 15
/// replicate instances concurrently.
///
/// Tasks are arbitrary callables; `submit` returns a std::future. The pool
/// joins all workers on destruction after draining the queue.
class ThreadPool {
  public:
    /// Spawn `threads` workers (defaults to hardware concurrency, min 1).
    explicit ThreadPool(std::size_t threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    [[nodiscard]] std::size_t num_threads() const { return workers_.size(); }

    /// Enqueue a task; the future resolves with its result (or exception).
    template <typename F>
    auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
        using R = std::invoke_result_t<F>;
        auto task =
            std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
        std::future<R> fut = task->get_future();
        {
            std::lock_guard lock(mu_);
            UAVDC_REQUIRE(!stopping_) << "ThreadPool: submit after shutdown";
            queue_.emplace_back([task]() { (*task)(); });
        }
        cv_.notify_one();
        return fut;
    }

    /// Block until the queue is empty and all workers are idle.
    void wait_idle();

    /// Deterministic shutdown: drain the queue, then join every worker.
    /// Idempotent (the destructor calls it); `submit` after shutdown raises
    /// a ContractViolation. Lets owners (the plan service, tests) sequence
    /// "no worker is running" against their own teardown instead of relying
    /// on destructor ordering.
    void shutdown();

    /// True when called from one of this pool's worker threads. Nested
    /// parallel constructs use this to fall back to inline execution
    /// instead of deadlocking on their own queue.
    [[nodiscard]] bool on_worker_thread() const;

  private:
    void worker_loop();

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mu_;
    std::condition_variable cv_;
    std::condition_variable idle_cv_;
    std::size_t active_{0};
    bool stopping_{false};
};

/// Process-wide shared pool (lazily constructed).
ThreadPool& global_pool();

}  // namespace uavdc::util
