#pragma once

#include <chrono>

namespace uavdc::util {

/// Wall-clock stopwatch used for the paper's running-time figures
/// (Fig. 3b / 4b / 5b).
class Timer {
  public:
    Timer() : start_(clock::now()) {}

    /// Restart the stopwatch.
    void reset() { start_ = clock::now(); }

    /// Seconds elapsed since construction / last reset.
    [[nodiscard]] double seconds() const {
        return std::chrono::duration<double>(clock::now() - start_).count();
    }

    /// Milliseconds elapsed.
    [[nodiscard]] double millis() const { return seconds() * 1e3; }

  private:
    using clock = std::chrono::steady_clock;
    clock::time_point start_;
};

}  // namespace uavdc::util
