#include "uavdc/workload/csv_import.hpp"

#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "uavdc/util/csv.hpp"

namespace uavdc::workload {

namespace {

bool parse_row(const std::string& line, double out[3]) {
    std::stringstream ss(line);
    std::string cell;
    for (int i = 0; i < 3; ++i) {
        if (!std::getline(ss, cell, ',')) return false;
        try {
            std::size_t used = 0;
            out[i] = std::stod(cell, &used);
            // Allow trailing whitespace only.
            for (std::size_t k = used; k < cell.size(); ++k) {
                if (!std::isspace(static_cast<unsigned char>(cell[k]))) {
                    return false;
                }
            }
        } catch (const std::exception&) {
            return false;
        }
    }
    std::string extra;
    if (std::getline(ss, extra, ',') && !extra.empty()) return false;
    return true;
}

}  // namespace

model::Instance load_devices_csv(const std::string& path,
                                 const model::UavConfig& uav,
                                 double region_margin_m) {
    std::ifstream in(path);
    if (!in) throw std::runtime_error("load_devices_csv: cannot open " +
                                      path);
    model::Instance inst;
    inst.name = "csv:" + path;
    inst.uav = uav;

    std::string line;
    int line_no = 0;
    int id = 0;
    bool first_content = true;
    while (std::getline(in, line)) {
        ++line_no;
        // Trim CR and whitespace-only lines; skip comments.
        while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
            line.pop_back();
        }
        if (line.empty() || line[0] == '#') continue;
        double row[3];
        if (!parse_row(line, row)) {
            if (first_content) {
                first_content = false;  // header line
                continue;
            }
            throw std::runtime_error("load_devices_csv: bad row at line " +
                                     std::to_string(line_no) + ": " + line);
        }
        first_content = false;
        if (row[2] < 0.0) {
            throw std::runtime_error(
                "load_devices_csv: negative volume at line " +
                std::to_string(line_no));
        }
        inst.devices.push_back({id++, {row[0], row[1]}, row[2]});
    }
    if (inst.devices.empty()) {
        throw std::runtime_error("load_devices_csv: no devices in " + path);
    }
    geom::Aabb box{inst.devices[0].pos, inst.devices[0].pos};
    for (const auto& d : inst.devices) box = box.expanded(d.pos);
    inst.region = box.inflated(region_margin_m);
    inst.depot = inst.region.lo;
    inst.validate();
    return inst;
}

void save_devices_csv(const std::string& path,
                      const model::Instance& inst) {
    util::CsvWriter csv(path);
    csv.row({"x", "y", "data_mb"});
    for (const auto& d : inst.devices) {
        csv.row_of(d.pos.x, d.pos.y, d.data_mb);
    }
    csv.flush();
}

}  // namespace uavdc::workload
