#pragma once

#include <string>

#include "uavdc/model/instance.hpp"

namespace uavdc::workload {

/// Load devices from a CSV file with rows `x,y,data_mb` (a header line is
/// auto-detected and skipped; blank lines and `#` comments ignored).
/// The monitoring region is the devices' bounding box expanded by
/// `region_margin_m`; the depot defaults to the region's lower-left
/// corner unless provided. This is the real-data ingestion path — survey
/// teams typically deliver exactly this shape of file.
///
/// Throws std::runtime_error on I/O or format errors (with line numbers).
[[nodiscard]] model::Instance load_devices_csv(
    const std::string& path, const model::UavConfig& uav,
    double region_margin_m = 10.0);

/// Write an instance's devices back out as `x,y,data_mb` CSV.
void save_devices_csv(const std::string& path, const model::Instance& inst);

}  // namespace uavdc::workload
