#include "uavdc/workload/generator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace uavdc::workload {

namespace {

/// Van der Corput radical inverse in the given base.
double radical_inverse(int index, int base) {
    double result = 0.0;
    double f = 1.0 / base;
    int i = index;
    while (i > 0) {
        result += f * (i % base);
        i /= base;
        f /= base;
    }
    return result;
}

geom::Vec2 sample_position(const GeneratorConfig& cfg, util::Rng& rng,
                           const std::vector<geom::Vec2>& centers, int index) {
    const geom::Aabb region = geom::Aabb::of_size(cfg.region_w, cfg.region_h);
    switch (cfg.deployment) {
        case Deployment::kUniform:
            return {rng.uniform(region.lo.x, region.hi.x),
                    rng.uniform(region.lo.y, region.hi.y)};
        case Deployment::kClustered: {
            const auto& c = centers[static_cast<std::size_t>(
                rng.uniform_int(0,
                                static_cast<std::int64_t>(centers.size()) -
                                    1))];
            return region.clamp({rng.normal(c.x, cfg.cluster_stddev),
                                 rng.normal(c.y, cfg.cluster_stddev)});
        }
        case Deployment::kGridJitter: {
            const int n = cfg.num_devices;
            const int cols = std::max(
                1, static_cast<int>(std::ceil(std::sqrt(
                       static_cast<double>(n) * cfg.region_w /
                       std::max(cfg.region_h, 1e-9)))));
            const int rows =
                std::max(1, (n + cols - 1) / cols);
            const double dx = cfg.region_w / cols;
            const double dy = cfg.region_h / rows;
            const int ix = index % cols;
            const int iy = index / cols;
            return region.clamp(
                {(ix + 0.5) * dx + rng.uniform(-0.4, 0.4) * dx,
                 (iy + 0.5) * dy + rng.uniform(-0.4, 0.4) * dy});
        }
        case Deployment::kHalton:
            // Bases 2 and 3; index shifted so the first point is not the
            // origin corner.
            return {radical_inverse(index + 1, 2) * cfg.region_w,
                    radical_inverse(index + 1, 3) * cfg.region_h};
        case Deployment::kPoissonDisk:
            // Handled as a whole layout in generate(); per-index sampling
            // falls back to uniform (unreachable in practice).
            return {rng.uniform(region.lo.x, region.hi.x),
                    rng.uniform(region.lo.y, region.hi.y)};
        case Deployment::kRing: {
            const geom::Vec2 c = region.center();
            const double r_out =
                0.45 * std::min(cfg.region_w, cfg.region_h);
            const double r_in = 0.6 * r_out;
            const double r = std::sqrt(rng.uniform(r_in * r_in,
                                                   r_out * r_out));
            const double a = rng.uniform(0.0, 6.283185307179586);
            return region.clamp(
                {c.x + r * std::cos(a), c.y + r * std::sin(a)});
        }
    }
    return region.center();
}

double sample_volume(const GeneratorConfig& cfg, util::Rng& rng) {
    switch (cfg.volumes) {
        case VolumeModel::kUniform:
            return rng.uniform(cfg.min_mb, cfg.max_mb);
        case VolumeModel::kExponential: {
            const double mean = (cfg.min_mb + cfg.max_mb) / 2.0;
            return std::clamp(rng.exponential(mean), cfg.min_mb, cfg.max_mb);
        }
        case VolumeModel::kFixed:
            return (cfg.min_mb + cfg.max_mb) / 2.0;
        case VolumeModel::kBimodal: {
            if (rng.bernoulli(cfg.bimodal_heavy_prob)) {
                return rng.uniform(0.8 * cfg.max_mb, cfg.max_mb);
            }
            return rng.uniform(cfg.min_mb, cfg.min_mb + 0.2 * (cfg.max_mb -
                                                               cfg.min_mb));
        }
    }
    return cfg.min_mb;
}

}  // namespace

std::string to_string(Deployment d) {
    switch (d) {
        case Deployment::kUniform:
            return "uniform";
        case Deployment::kClustered:
            return "clustered";
        case Deployment::kGridJitter:
            return "grid-jitter";
        case Deployment::kRing:
            return "ring";
        case Deployment::kHalton:
            return "halton";
        case Deployment::kPoissonDisk:
            return "poisson-disk";
    }
    return "unknown";
}

std::string to_string(VolumeModel v) {
    switch (v) {
        case VolumeModel::kUniform:
            return "uniform";
        case VolumeModel::kExponential:
            return "exponential";
        case VolumeModel::kFixed:
            return "fixed";
        case VolumeModel::kBimodal:
            return "bimodal";
    }
    return "unknown";
}

model::Instance generate(const GeneratorConfig& cfg, std::uint64_t seed) {
    if (cfg.num_devices < 0) {
        throw std::invalid_argument("generate: negative device count");
    }
    if (cfg.min_mb < 0.0 || cfg.max_mb < cfg.min_mb) {
        throw std::invalid_argument("generate: bad volume range");
    }
    if (cfg.region_w <= 0.0 || cfg.region_h <= 0.0) {
        throw std::invalid_argument("generate: bad region size");
    }
    model::Instance inst;
    inst.name = to_string(cfg.deployment) + "-" +
                std::to_string(cfg.num_devices) + "-s" + std::to_string(seed);
    inst.region = geom::Aabb::of_size(cfg.region_w, cfg.region_h);
    inst.depot = inst.region.clamp(cfg.depot);
    inst.uav = cfg.uav;

    util::Rng rng(seed ^ 0xC0FFEE123456789AULL);
    std::vector<geom::Vec2> centers;
    if (cfg.deployment == Deployment::kClustered) {
        const int k = std::max(1, cfg.clusters);
        centers.reserve(static_cast<std::size_t>(k));
        for (int i = 0; i < k; ++i) {
            centers.push_back({rng.uniform(0.0, cfg.region_w),
                               rng.uniform(0.0, cfg.region_h)});
        }
    }
    inst.devices.reserve(static_cast<std::size_t>(cfg.num_devices));
    if (cfg.deployment == Deployment::kPoissonDisk && cfg.num_devices > 0) {
        // Dart throwing with shrinking radius: place each point at least
        // min_dist from all previously accepted ones; halve the radius
        // whenever too many consecutive rejections pile up so the request
        // always completes.
        double min_dist = cfg.poisson_min_dist;
        if (min_dist <= 0.0) {
            min_dist = 0.5 * std::sqrt(cfg.region_w * cfg.region_h /
                                       cfg.num_devices);
        }
        std::vector<geom::Vec2> placed;
        placed.reserve(static_cast<std::size_t>(cfg.num_devices));
        int rejects = 0;
        while (static_cast<int>(placed.size()) < cfg.num_devices) {
            const geom::Vec2 cand{rng.uniform(0.0, cfg.region_w),
                                  rng.uniform(0.0, cfg.region_h)};
            bool ok = true;
            for (const auto& q : placed) {
                if (geom::distance2(cand, q) < min_dist * min_dist) {
                    ok = false;
                    break;
                }
            }
            if (ok) {
                placed.push_back(cand);
                rejects = 0;
            } else if (++rejects > 500) {
                min_dist *= 0.5;
                rejects = 0;
            }
        }
        for (int i = 0; i < cfg.num_devices; ++i) {
            inst.devices.push_back(
                {i, placed[static_cast<std::size_t>(i)],
                 sample_volume(cfg, rng)});
        }
    } else {
        for (int i = 0; i < cfg.num_devices; ++i) {
            model::Device d;
            d.id = i;
            d.pos = sample_position(cfg, rng, centers, i);
            d.data_mb = sample_volume(cfg, rng);
            inst.devices.push_back(d);
        }
    }
    inst.validate();
    return inst;
}

}  // namespace uavdc::workload
