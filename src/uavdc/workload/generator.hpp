#pragma once

#include <cstdint>
#include <string>

#include "uavdc/model/instance.hpp"
#include "uavdc/util/rng.hpp"

namespace uavdc::workload {

/// Spatial layout of aggregate sensor nodes.
enum class Deployment {
    kUniform,    ///< i.i.d. uniform over the region (paper's setting)
    kClustered,  ///< Gaussian blobs around uniformly-placed cluster centres
    kGridJitter, ///< regular lattice with uniform jitter (farm/city blocks)
    kRing,       ///< devices on an annulus around the region centre
    kHalton,     ///< low-discrepancy Halton sequence (even, aperiodic)
    kPoissonDisk,///< blue-noise: minimum pairwise spacing (dart throwing)
};

/// Distribution of stored data volume D_v.
enum class VolumeModel {
    kUniform,     ///< U[min_mb, max_mb] (paper: 100..1000 MB)
    kExponential, ///< Exp(mean = (min+max)/2), clamped to [min, max]
    kFixed,       ///< every device holds (min_mb + max_mb) / 2
    kBimodal,     ///< mostly-light devices with occasional heavy hoarders
};

[[nodiscard]] std::string to_string(Deployment d);
[[nodiscard]] std::string to_string(VolumeModel v);

/// Scenario generator configuration. Defaults reproduce Sec. VII-A:
/// 500 nodes uniform in 1000 x 1000 m, D_v ~ U[100, 1000] MB, depot at the
/// region corner, paper UAV constants (via UavConfig defaults).
struct GeneratorConfig {
    int num_devices = 500;
    double region_w = 1000.0;
    double region_h = 1000.0;
    Deployment deployment = Deployment::kUniform;
    VolumeModel volumes = VolumeModel::kUniform;
    double min_mb = 100.0;
    double max_mb = 1000.0;
    int clusters = 8;             ///< kClustered: number of blobs
    double cluster_stddev = 60.0; ///< kClustered: blob spread (m)
    /// kPoissonDisk: minimum pairwise distance (0 = auto: half the mean
    /// nearest-neighbour spacing of a uniform layout at this density).
    double poisson_min_dist = 0.0;
    double bimodal_heavy_prob = 0.1;  ///< kBimodal: P(heavy device)
    /// Depot position; if outside the region it is clamped to the boundary.
    geom::Vec2 depot{0.0, 0.0};
    model::UavConfig uav{};
};

/// Generate a reproducible instance: same (config, seed) -> same instance.
[[nodiscard]] model::Instance generate(const GeneratorConfig& cfg,
                                       std::uint64_t seed);

}  // namespace uavdc::workload
