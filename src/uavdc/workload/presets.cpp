#include "uavdc/workload/presets.hpp"

#include <algorithm>
#include <cmath>

namespace uavdc::workload {

model::UavConfig paper_uav() {
    model::UavConfig uav;
    uav.energy_j = 3.0e5;
    uav.speed_mps = 10.0;
    uav.hover_power_w = 150.0;
    uav.travel_rate = 100.0;
    uav.travel_energy_model = model::TravelEnergyModel::kPerMeter;
    uav.coverage_radius_m = 50.0;
    uav.bandwidth_mbps = 150.0;
    return uav;
}

GeneratorConfig paper_default() {
    GeneratorConfig cfg;
    cfg.num_devices = 500;
    cfg.region_w = 1000.0;
    cfg.region_h = 1000.0;
    cfg.deployment = Deployment::kUniform;
    cfg.volumes = VolumeModel::kUniform;
    cfg.min_mb = 100.0;
    cfg.max_mb = 1000.0;
    cfg.depot = {0.0, 0.0};
    cfg.uav = paper_uav();
    return cfg;
}

GeneratorConfig paper_scaled(double scale) {
    GeneratorConfig cfg = paper_default();
    const double s = std::clamp(scale, 0.05, 1.0);
    cfg.region_w *= s;
    cfg.region_h *= s;
    cfg.num_devices = std::max(
        10, static_cast<int>(std::lround(500.0 * s * s)));
    return cfg;
}

GeneratorConfig smart_city() {
    GeneratorConfig cfg = paper_default();
    cfg.deployment = Deployment::kClustered;
    cfg.clusters = 10;
    cfg.cluster_stddev = 55.0;
    cfg.volumes = VolumeModel::kBimodal;
    cfg.bimodal_heavy_prob = 0.12;
    return cfg;
}

GeneratorConfig disaster_response() {
    GeneratorConfig cfg = paper_default();
    cfg.deployment = Deployment::kRing;
    cfg.volumes = VolumeModel::kExponential;
    cfg.num_devices = 300;
    return cfg;
}

GeneratorConfig scale_large() {
    GeneratorConfig cfg = paper_default();
    cfg.num_devices = 5000;
    cfg.region_w = 3200.0;
    cfg.region_h = 3200.0;
    cfg.uav.energy_j = 3.0e6;
    return cfg;
}

GeneratorConfig farm_monitoring() {
    GeneratorConfig cfg = paper_default();
    cfg.deployment = Deployment::kGridJitter;
    cfg.volumes = VolumeModel::kFixed;
    cfg.min_mb = 180.0;
    cfg.max_mb = 220.0;
    return cfg;
}

}  // namespace uavdc::workload
