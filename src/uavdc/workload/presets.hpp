#pragma once

#include "uavdc/workload/generator.hpp"

namespace uavdc::workload {

/// The paper's default experimental setting (Sec. VII-A): 500 aggregate
/// sensor nodes uniform in 1000 x 1000 m, D_v ~ U[100, 1000] MB, R0 = 50 m,
/// B = 150 MB/s, E = 3e5 J, speed 10 m/s, eta_t = 100 J/s, eta_h = 150 J/s.
[[nodiscard]] GeneratorConfig paper_default();

/// Scaled-down variant for fast CI / default bench runs: same densities and
/// UAV constants, smaller field. `scale` in (0, 1] shrinks the region edge
/// and the device count by `scale` (area by scale^2, keeping device density).
[[nodiscard]] GeneratorConfig paper_scaled(double scale);

/// Smart-city scenario: clustered deployment (districts) with bimodal data
/// volumes (CCTV aggregation points vs. telemetry nodes).
[[nodiscard]] GeneratorConfig smart_city();

/// Disaster-response scenario: ring deployment around an incident zone the
/// ground vehicles cannot cross; exponential volumes.
[[nodiscard]] GeneratorConfig disaster_response();

/// Precision-farm scenario: jittered lattice of soil/crop sensors with
/// near-identical volumes.
[[nodiscard]] GeneratorConfig farm_monitoring();

/// Scale-stress tier: 5000 devices uniform in 3200 x 3200 m (a ~100k-cell
/// grid at the 10 m default resolution — 10x the paper's device count and
/// ~100x its cell count), with the battery scaled up 10x so plans still
/// visit a meaningful fraction of the field. The candidate-reduction
/// pipeline is benchmarked against this tier (bench/micro_reduction).
[[nodiscard]] GeneratorConfig scale_large();

/// Paper-defaults UAV platform (used by all presets).
[[nodiscard]] model::UavConfig paper_uav();

}  // namespace uavdc::workload
