#include "uavdc/workload/transforms.hpp"

#include <cmath>
#include <stdexcept>

namespace uavdc::workload {

namespace {

void redensify(model::Instance& inst) {
    for (std::size_t i = 0; i < inst.devices.size(); ++i) {
        inst.devices[i].id = static_cast<int>(i);
    }
}

}  // namespace

model::Instance scaled(const model::Instance& inst, double factor) {
    if (!(factor > 0.0)) {
        throw std::invalid_argument("scaled: factor must be positive");
    }
    model::Instance out = inst;
    const geom::Vec2 origin = inst.region.lo;
    auto map = [&](const geom::Vec2& p) {
        return origin + (p - origin) * factor;
    };
    out.region = geom::Aabb{origin, map(inst.region.hi)};
    out.depot = map(inst.depot);
    for (auto& d : out.devices) d.pos = map(d.pos);
    out.validate();
    return out;
}

model::Instance translated(const model::Instance& inst,
                           const geom::Vec2& offset) {
    model::Instance out = inst;
    out.region = geom::Aabb{inst.region.lo + offset, inst.region.hi + offset};
    out.depot += offset;
    for (auto& d : out.devices) d.pos += offset;
    out.validate();
    return out;
}

model::Instance rotated(const model::Instance& inst, double radians,
                        double margin_m) {
    model::Instance out = inst;
    const geom::Vec2 c = inst.region.center();
    const double cs = std::cos(radians);
    const double sn = std::sin(radians);
    auto rot = [&](const geom::Vec2& p) {
        const geom::Vec2 v = p - c;
        return c + geom::Vec2{v.x * cs - v.y * sn, v.x * sn + v.y * cs};
    };
    out.depot = rot(inst.depot);
    for (auto& d : out.devices) d.pos = rot(d.pos);
    geom::Aabb box{out.depot, out.depot};
    for (const auto& d : out.devices) box = box.expanded(d.pos);
    out.region = box.inflated(margin_m);
    out.validate();
    return out;
}

model::Instance cropped(const model::Instance& inst,
                        const geom::Aabb& window) {
    model::Instance out;
    out.name = inst.name + "-crop";
    out.region = window;
    out.depot = window.clamp(inst.depot);
    out.uav = inst.uav;
    for (const auto& d : inst.devices) {
        if (window.contains(d.pos)) out.devices.push_back(d);
    }
    redensify(out);
    out.validate();
    return out;
}

model::Instance merged(const model::Instance& a, const model::Instance& b) {
    model::Instance out;
    out.name = a.name + "+" + b.name;
    geom::Aabb box = a.region;
    box = box.expanded(b.region.lo);
    box = box.expanded(b.region.hi);
    out.region = box;
    out.depot = a.depot;
    out.uav = a.uav;
    out.devices = a.devices;
    out.devices.insert(out.devices.end(), b.devices.begin(),
                       b.devices.end());
    redensify(out);
    out.validate();
    return out;
}

model::Instance with_volume_factor(const model::Instance& inst,
                                   double factor) {
    if (factor < 0.0) {
        throw std::invalid_argument(
            "with_volume_factor: factor must be >= 0");
    }
    model::Instance out = inst;
    for (auto& d : out.devices) d.data_mb *= factor;
    out.validate();
    return out;
}

}  // namespace uavdc::workload
