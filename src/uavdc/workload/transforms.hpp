#pragma once

#include "uavdc/model/instance.hpp"

namespace uavdc::workload {

/// Instance transformations for experiment design: compose fields from
/// pieces, crop to areas of interest, and build scaled/rotated variants
/// without regenerating workloads.
///
/// All functions return fresh instances with dense device ids and pass
/// Instance::validate().

/// Uniformly scale geometry about the region's lower-left corner
/// (positions, region, depot; device volumes unchanged). factor > 0.
[[nodiscard]] model::Instance scaled(const model::Instance& inst,
                                     double factor);

/// Translate everything by `offset` (region, depot, devices).
[[nodiscard]] model::Instance translated(const model::Instance& inst,
                                         const geom::Vec2& offset);

/// Rotate device and depot positions by `radians` about the region centre;
/// the region is replaced by the rotated layout's bounding box (inflated
/// by `margin_m`) so every device stays inside.
[[nodiscard]] model::Instance rotated(const model::Instance& inst,
                                      double radians,
                                      double margin_m = 1.0);

/// Keep only the devices inside `window` (region becomes the window).
/// The depot is clamped into the window.
[[nodiscard]] model::Instance cropped(const model::Instance& inst,
                                      const geom::Aabb& window);

/// Union of two fields: region = joint bounding box, devices concatenated
/// (ids re-densified). Depot and UAV are taken from `a`.
[[nodiscard]] model::Instance merged(const model::Instance& a,
                                     const model::Instance& b);

/// Multiply every device's stored volume by `factor` (>= 0) — e.g. model
/// a longer accumulation period T (Sec. III-B ties D_v to the monitoring
/// duration).
[[nodiscard]] model::Instance with_volume_factor(const model::Instance& inst,
                                                 double factor);

}  // namespace uavdc::workload
