#include "uavdc/geom/aabb.hpp"

#include <gtest/gtest.h>

namespace uavdc::geom {
namespace {

TEST(Aabb, OfSize) {
    const Aabb b = Aabb::of_size(10.0, 20.0);
    EXPECT_EQ(b.lo, Vec2(0.0, 0.0));
    EXPECT_EQ(b.hi, Vec2(10.0, 20.0));
    EXPECT_DOUBLE_EQ(b.width(), 10.0);
    EXPECT_DOUBLE_EQ(b.height(), 20.0);
    EXPECT_DOUBLE_EQ(b.area(), 200.0);
}

TEST(Aabb, Center) {
    const Aabb b{{2.0, 4.0}, {6.0, 8.0}};
    EXPECT_EQ(b.center(), Vec2(4.0, 6.0));
}

TEST(Aabb, ContainsClosedBoundary) {
    const Aabb b = Aabb::of_size(10.0, 10.0);
    EXPECT_TRUE(b.contains({0.0, 0.0}));
    EXPECT_TRUE(b.contains({10.0, 10.0}));
    EXPECT_TRUE(b.contains({5.0, 5.0}));
    EXPECT_FALSE(b.contains({10.0001, 5.0}));
    EXPECT_FALSE(b.contains({-0.0001, 5.0}));
}

TEST(Aabb, Clamp) {
    const Aabb b = Aabb::of_size(10.0, 10.0);
    EXPECT_EQ(b.clamp({-5.0, 5.0}), Vec2(0.0, 5.0));
    EXPECT_EQ(b.clamp({15.0, 20.0}), Vec2(10.0, 10.0));
    EXPECT_EQ(b.clamp({3.0, 4.0}), Vec2(3.0, 4.0));
}

TEST(Aabb, Expanded) {
    const Aabb b = Aabb::of_size(1.0, 1.0);
    const Aabb e = b.expanded({5.0, -2.0});
    EXPECT_EQ(e.lo, Vec2(0.0, -2.0));
    EXPECT_EQ(e.hi, Vec2(5.0, 1.0));
}

TEST(Aabb, Inflated) {
    const Aabb b = Aabb::of_size(10.0, 10.0);
    const Aabb i = b.inflated(2.0);
    EXPECT_EQ(i.lo, Vec2(-2.0, -2.0));
    EXPECT_EQ(i.hi, Vec2(12.0, 12.0));
}

TEST(Aabb, DistanceTo) {
    const Aabb b = Aabb::of_size(10.0, 10.0);
    EXPECT_DOUBLE_EQ(b.distance_to({5.0, 5.0}), 0.0);
    EXPECT_DOUBLE_EQ(b.distance_to({13.0, 14.0}), 5.0);
    EXPECT_DOUBLE_EQ(b.distance_to({-3.0, 5.0}), 3.0);
}

TEST(Aabb, IntersectsDisk) {
    const Aabb b = Aabb::of_size(10.0, 10.0);
    EXPECT_TRUE(b.intersects_disk({5.0, 5.0}, 0.1));
    EXPECT_TRUE(b.intersects_disk({12.0, 5.0}, 2.0));
    EXPECT_FALSE(b.intersects_disk({13.0, 14.0}, 4.9));
    EXPECT_TRUE(b.intersects_disk({13.0, 14.0}, 5.0));
}

TEST(Aabb, Equality) {
    EXPECT_EQ(Aabb::of_size(1.0, 2.0), Aabb::of_size(1.0, 2.0));
    EXPECT_FALSE(Aabb::of_size(1.0, 2.0) == Aabb::of_size(2.0, 1.0));
}

}  // namespace
}  // namespace uavdc::geom
