#include "uavdc/sim/adaptive.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"
#include "uavdc/core/algorithm2.hpp"
#include "uavdc/core/evaluate.hpp"

namespace uavdc::sim {
namespace {

using testing::manual_instance;
using testing::small_instance;

model::FlightPlan plan_for(const model::Instance& inst) {
    core::Algorithm2Config cfg;
    cfg.candidates.delta_m = 20.0;
    return core::GreedyCoveragePlanner(cfg).plan(inst).plan;
}

TEST(Adaptive, MatchesPlanUnderConstantRadio) {
    for (std::uint64_t seed : {91u, 92u}) {
        const auto inst = small_instance(30, 300.0, seed);
        const auto plan = plan_for(inst);
        const auto ev = core::evaluate_plan(inst, plan);
        const auto rep = fly_adaptive(inst, plan);
        EXPECT_TRUE(rep.completed);
        EXPECT_GE(rep.collected_mb, ev.collected_mb - 1e-6) << seed;
        EXPECT_LE(rep.energy_used_j, inst.uav.energy_j + 1e-6) << seed;
    }
}

TEST(Adaptive, BeatsOpenLoopUnderTaperedRadio) {
    // Under a real-world rate taper the open-loop plan under-collects;
    // the adaptive controller recovers part of the shortfall by extending
    // dwells funded by its route-home reserve accounting.
    const DistanceTaperRadio taper(0.5);
    double open_total = 0.0;
    double adaptive_total = 0.0;
    for (std::uint64_t seed : {93u, 94u, 95u}) {
        const auto inst = small_instance(30, 300.0, seed);
        const auto plan = plan_for(inst);
        SimConfig scfg;
        scfg.record_trace = false;
        scfg.radio = &taper;
        open_total += Simulator(scfg).run(inst, plan).collected_mb;
        AdaptiveConfig acfg;
        acfg.radio = &taper;
        const auto rep = fly_adaptive(inst, plan, acfg);
        EXPECT_TRUE(rep.completed);
        EXPECT_LE(rep.energy_used_j, inst.uav.energy_j + 1e-6);
        adaptive_total += rep.collected_mb;
    }
    EXPECT_GT(adaptive_total, open_total);
}

TEST(Adaptive, NeverExceedsBattery) {
    const DistanceTaperRadio taper(0.75);
    for (std::uint64_t seed : {96u, 97u}) {
        auto inst = small_instance(25, 280.0, seed);
        inst.uav.energy_j = 4.0e4;
        const auto plan = plan_for(inst);
        AdaptiveConfig acfg;
        acfg.radio = &taper;
        const auto rep = fly_adaptive(inst, plan, acfg);
        EXPECT_LE(rep.energy_used_j, inst.uav.energy_j + 1e-6);
        EXPECT_TRUE(rep.completed);
    }
}

TEST(Adaptive, ExtendsDwellForSlowDevice) {
    // Device at 40 m: taper rate = 150 * (1 - 0.5 * 0.64) = 102 MB/s.
    // Planned dwell assumes 150 MB/s (2 s for 300 MB); actual need is
    // 2.94 s. Open loop collects 204 MB, the controller everything.
    const auto inst = manual_instance({{{90.0, 50.0}, 300.0}});
    model::FlightPlan plan;
    plan.stops.push_back({{50.0, 50.0}, 2.0, -1});
    const DistanceTaperRadio taper(0.5);
    AdaptiveConfig acfg;
    acfg.radio = &taper;
    const auto rep = fly_adaptive(inst, plan, acfg);
    EXPECT_NEAR(rep.collected_mb, 300.0, 1e-6);
    EXPECT_GT(rep.hover_s, 2.0);
}

TEST(Adaptive, SafetyMarginReducesHover) {
    const auto inst = manual_instance({{{90.0, 50.0}, 3000.0}});
    model::FlightPlan plan;
    plan.stops.push_back({{50.0, 50.0}, 20.0, -1});
    auto tight = inst;
    tight.uav.energy_j = 2.0e4;
    AdaptiveConfig no_margin;
    AdaptiveConfig margin;
    margin.safety_margin_j = 5.0e3;
    const auto a = fly_adaptive(tight, plan, no_margin);
    const auto b = fly_adaptive(tight, plan, margin);
    EXPECT_LT(b.hover_s, a.hover_s);
    EXPECT_LE(b.energy_used_j + 5.0e3, tight.uav.energy_j + 1e-6);
}

TEST(Adaptive, ImpossibleRouteReported) {
    auto inst = manual_instance({{{200.0, 0.0}, 100.0}}, 300.0);
    inst.uav.energy_j = 100.0;  // 1 m of flight
    model::FlightPlan plan;
    plan.stops.push_back({{200.0, 0.0}, 1.0, -1});
    const auto rep = fly_adaptive(inst, plan);
    EXPECT_TRUE(rep.battery_depleted);
    EXPECT_FALSE(rep.completed);
    EXPECT_DOUBLE_EQ(rep.collected_mb, 0.0);
}

TEST(Adaptive, EmptyPlanNoop) {
    const auto inst = manual_instance({{{50.0, 50.0}, 100.0}});
    const auto rep = fly_adaptive(inst, {});
    EXPECT_TRUE(rep.completed);
    EXPECT_DOUBLE_EQ(rep.collected_mb, 0.0);
    EXPECT_DOUBLE_EQ(rep.energy_used_j, 0.0);
}

}  // namespace
}  // namespace uavdc::sim
