#include "uavdc/core/baseline_planners.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"
#include "uavdc/core/algorithm2.hpp"
#include "uavdc/core/evaluate.hpp"

namespace uavdc::core {
namespace {

using testing::small_instance;

TEST(ClusterPlanner, FeasiblePlans) {
    for (std::uint64_t seed : {1u, 2u, 3u}) {
        const auto inst = small_instance(40, 350.0, seed, 6.0e4);
        ClusterPlanner planner;
        const auto res = planner.plan(inst);
        EXPECT_TRUE(res.plan.feasible(inst.depot, inst.uav, 1e-6));
        const auto ev = evaluate_plan(inst, res.plan);
        EXPECT_GE(ev.collected_mb, res.stats.planned_mb - 1e-6);
        EXPECT_GT(ev.collected_mb, 0.0);
    }
}

TEST(ClusterPlanner, EmptyInstance) {
    model::Instance inst;
    inst.region = geom::Aabb::of_size(100.0, 100.0);
    inst.depot = {0.0, 0.0};
    const auto res = ClusterPlanner().plan(inst);
    EXPECT_TRUE(res.plan.empty());
}

TEST(ClusterPlanner, LosesToOverlapAwarePlanning) {
    // The paper's thesis: grid candidates beat naive clustering. Aggregate
    // over seeds; the k-means baseline misses out-of-range cluster members.
    double cluster_gb = 0.0;
    double alg2_gb = 0.0;
    for (std::uint64_t seed : {4u, 5u, 6u}) {
        const auto inst = small_instance(40, 350.0, seed, 6.0e4);
        cluster_gb +=
            evaluate_plan(inst, ClusterPlanner().plan(inst).plan)
                .collected_mb;
        Algorithm2Config cfg;
        cfg.candidates.delta_m = 15.0;
        alg2_gb += evaluate_plan(
                       inst, GreedyCoveragePlanner(cfg).plan(inst).plan)
                       .collected_mb;
    }
    EXPECT_GE(alg2_gb, cluster_gb);
}

TEST(SweepPlanner, FeasiblePlans) {
    for (std::uint64_t seed : {7u, 8u}) {
        const auto inst = small_instance(40, 350.0, seed, 6.0e4);
        SweepPlanner planner;
        const auto res = planner.plan(inst);
        EXPECT_TRUE(res.plan.feasible(inst.depot, inst.uav, 1e-6));
        const auto ev = evaluate_plan(inst, res.plan);
        EXPECT_GE(ev.collected_mb, res.stats.planned_mb - 1e-6);
    }
}

TEST(SweepPlanner, CoversEverythingWithUnlimitedEnergy) {
    const auto inst = small_instance(25, 250.0, 9, 1.0e9);
    const auto res = SweepPlanner().plan(inst);
    const auto ev = evaluate_plan(inst, res.plan);
    EXPECT_NEAR(ev.collected_mb, inst.total_data_mb(), 1e-6);
}

TEST(SweepPlanner, TruncatesUnderTightBudget) {
    auto inst = small_instance(40, 350.0, 10);
    inst.uav.energy_j = 2.0e4;
    const auto res = SweepPlanner().plan(inst);
    EXPECT_TRUE(res.plan.feasible(inst.depot, inst.uav, 1e-6));
    const auto ev = evaluate_plan(inst, res.plan);
    EXPECT_LT(ev.collected_mb, inst.total_data_mb());
}

TEST(SweepPlanner, SkipsEmptyWaypoints) {
    // A single far device: the sweep should only hover where data exists.
    const auto inst = testing::manual_instance({{{150.0, 150.0}, 300.0}},
                                               300.0);
    const auto res = SweepPlanner().plan(inst);
    EXPECT_LE(res.plan.num_stops(), 4u);
    const auto ev = evaluate_plan(inst, res.plan);
    EXPECT_NEAR(ev.collected_mb, 300.0, 1e-6);
}

TEST(Baselines, OrderingHoldsOnAverage) {
    // alg2 >= kmeans and alg2 >= sweep under scarcity, aggregated.
    double a2 = 0.0, km = 0.0, sw = 0.0;
    for (std::uint64_t seed : {11u, 12u, 13u}) {
        auto inst = small_instance(40, 350.0, seed);
        inst.uav.energy_j = 4.0e4;
        Algorithm2Config cfg;
        cfg.candidates.delta_m = 15.0;
        a2 += evaluate_plan(inst,
                            GreedyCoveragePlanner(cfg).plan(inst).plan)
                  .collected_mb;
        km += evaluate_plan(inst, ClusterPlanner().plan(inst).plan)
                  .collected_mb;
        sw += evaluate_plan(inst, SweepPlanner().plan(inst).plan)
                  .collected_mb;
    }
    EXPECT_GT(a2, km);
    EXPECT_GT(a2, sw);
}

}  // namespace
}  // namespace uavdc::core
