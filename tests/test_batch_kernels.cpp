// SoA layout + batched-kernel equivalence suite. The elementwise kernels
// carry a bitwise contract: every lane evaluates the exact scalar
// geom::distance expression, so results are EXPECT_EQ-identical to the
// loops they replaced — across 0-device, 1-device, and non-multiple-of-8
// sizes, and across 50 fuzzed generator instances. The fast reductions are
// only epsilon-close to the ordered ones, but must be deterministic.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "test_util.hpp"
#include "uavdc/core/batch_kernels.hpp"
#include "uavdc/core/hover_candidates.hpp"
#include "uavdc/core/soa_layout.hpp"
#include "uavdc/geom/vec2.hpp"
#include "uavdc/util/rng.hpp"
#include "uavdc/workload/generator.hpp"

namespace uavdc::core {
namespace {

bool aligned32(const void* p) {
    return reinterpret_cast<std::uintptr_t>(p) % util::kSoaAlignment == 0;
}

model::Instance fuzz_instance(util::Rng& rng, int min_devices,
                              int max_devices) {
    workload::GeneratorConfig g;
    g.num_devices =
        static_cast<int>(rng.uniform_int(min_devices, max_devices));
    g.region_w = rng.uniform(150.0, 500.0);
    g.region_h = rng.uniform(150.0, 500.0);
    g.min_mb = rng.uniform(20.0, 150.0);
    g.max_mb = g.min_mb + rng.uniform(50.0, 800.0);
    return workload::generate(g, rng.next_u64());
}

// --- SoA layout: padding, alignment, and value fidelity.

TEST(SoaLayout, PaddedSizeRoundsUpToLanes) {
    EXPECT_EQ(soa_padded(0), 0u);
    EXPECT_EQ(soa_padded(1), 8u);
    EXPECT_EQ(soa_padded(8), 8u);
    EXPECT_EQ(soa_padded(9), 16u);
    EXPECT_EQ(soa_padded(13), 16u);
}

TEST(SoaLayout, DeviceSoaHandlesEmptySingleAndOddSizes) {
    for (const int n : {0, 1, 13}) {
        std::vector<std::pair<geom::Vec2, double>> devs;
        for (int i = 0; i < n; ++i) {
            devs.push_back({{10.0 * i + 0.25, 5.0 * i + 0.75},
                            40.0 + 3.0 * i});
        }
        // manual_instance requires >= 1 device; build the empty case by
        // clearing a one-device instance.
        auto inst = testing::manual_instance(
            devs.empty()
                ? std::vector<std::pair<geom::Vec2, double>>{{{1.0, 1.0},
                                                              10.0}}
                : devs);
        if (devs.empty()) inst.devices.clear();

        const DeviceSoa soa = build_device_soa(inst);
        const auto count = static_cast<std::size_t>(n);
        ASSERT_EQ(soa.size(), count);
        ASSERT_EQ(soa.pos.xs.size(), soa_padded(count));
        ASSERT_EQ(soa.pos.ys.size(), soa_padded(count));
        ASSERT_EQ(soa.data_mb.size(), soa_padded(count));
        ASSERT_EQ(soa.upload_s.size(), soa_padded(count));
        if (!soa.pos.xs.empty()) {
            EXPECT_TRUE(aligned32(soa.pos.xs.data()));
            EXPECT_TRUE(aligned32(soa.pos.ys.data()));
            EXPECT_TRUE(aligned32(soa.data_mb.data()));
            EXPECT_TRUE(aligned32(soa.upload_s.data()));
        }
        const double bw = inst.uav.bandwidth_mbps;
        for (std::size_t v = 0; v < count; ++v) {
            EXPECT_EQ(soa.pos.xs[v], inst.devices[v].pos.x);
            EXPECT_EQ(soa.pos.ys[v], inst.devices[v].pos.y);
            EXPECT_EQ(soa.data_mb[v], inst.devices[v].data_mb);
            // Bitwise: the same division Device::upload_time performs.
            EXPECT_EQ(soa.upload_s[v], inst.devices[v].upload_time(bw));
        }
        for (std::size_t v = count; v < soa.pos.xs.size(); ++v) {
            EXPECT_EQ(soa.pos.xs[v], 0.0);
            EXPECT_EQ(soa.pos.ys[v], 0.0);
            EXPECT_EQ(soa.data_mb[v], 0.0);
            EXPECT_EQ(soa.upload_s[v], 0.0);
        }
    }
}

TEST(SoaLayout, CandidateSoaMirrorsCsrCoverage) {
    const auto inst = testing::small_instance(30, 250.0, 11);
    HoverCandidateConfig cfg;
    cfg.delta_m = 25.0;
    const auto set = build_hover_candidates(inst, cfg);
    ASSERT_FALSE(set.candidates.empty());

    const CandidateSoa soa = build_candidate_soa(set);
    ASSERT_EQ(soa.size(), set.candidates.size());
    ASSERT_EQ(soa.cov_starts.size(), set.candidates.size() + 1);
    for (std::size_t j = 0; j < set.candidates.size(); ++j) {
        const auto& c = set.candidates[j];
        EXPECT_EQ(soa.pos.xs[j], c.pos.x);
        EXPECT_EQ(soa.pos.ys[j], c.pos.y);
        EXPECT_EQ(soa.award_mb[j], c.award_mb);
        EXPECT_EQ(soa.dwell_s[j], c.dwell_s);
        const auto cov = soa.covered(j);
        ASSERT_EQ(cov.size(), c.covered.size());
        for (std::size_t t = 0; t < cov.size(); ++t) {
            EXPECT_EQ(cov[t], c.covered[t]);
        }
    }
}

// --- Elementwise kernels: bitwise against the scalar expressions, at
// --- awkward sizes (0, 1, lane-straddling remainders).

TEST(BatchKernels, DistancesMatchScalarAtAwkwardSizes) {
    util::Rng rng(42);
    for (const std::size_t n : {0u, 1u, 2u, 7u, 8u, 9u, 15u, 31u, 64u}) {
        util::AlignedVector<double> xs(soa_padded(n), 0.0);
        util::AlignedVector<double> ys(soa_padded(n), 0.0);
        for (std::size_t i = 0; i < n; ++i) {
            xs[i] = rng.uniform(-500.0, 500.0);
            ys[i] = rng.uniform(-500.0, 500.0);
        }
        const geom::Vec2 p{rng.uniform(-500.0, 500.0),
                           rng.uniform(-500.0, 500.0)};
        std::vector<double> d2(n + 1, -1.0);
        std::vector<double> d(n + 1, -1.0);
        kernels::squared_distances_to_point(xs.data(), ys.data(), n, p.x,
                                            p.y, d2.data());
        kernels::distances_to_point(xs.data(), ys.data(), n, p.x, p.y,
                                    d.data());
        for (std::size_t i = 0; i < n; ++i) {
            const geom::Vec2 q{xs[i], ys[i]};
            EXPECT_EQ(d2[i], geom::distance2(q, p)) << "n=" << n << " i=" << i;
            EXPECT_EQ(d[i], geom::distance(q, p)) << "n=" << n << " i=" << i;
            // The squares kill the sign, so the symmetric call agrees too.
            EXPECT_EQ(d[i], geom::distance(p, q)) << "n=" << n << " i=" << i;
        }
        // The kernel writes exactly n outputs.
        EXPECT_EQ(d2[n], -1.0);
        EXPECT_EQ(d[n], -1.0);
    }
}

TEST(BatchKernels, InsertionEdgeDeltasMatchScalar) {
    util::Rng rng(7);
    for (int trial = 0; trial < 20; ++trial) {
        const std::size_t n = static_cast<std::size_t>(
            rng.uniform_int(0, 20));
        util::AlignedVector<double> xs(soa_padded(n), 0.0);
        util::AlignedVector<double> ys(soa_padded(n), 0.0);
        for (std::size_t i = 0; i < n; ++i) {
            xs[i] = rng.uniform(0.0, 300.0);
            ys[i] = rng.uniform(0.0, 300.0);
        }
        const geom::Vec2 a{rng.uniform(0.0, 300.0), rng.uniform(0.0, 300.0)};
        const geom::Vec2 p{rng.uniform(0.0, 300.0), rng.uniform(0.0, 300.0)};
        const geom::Vec2 b{rng.uniform(0.0, 300.0), rng.uniform(0.0, 300.0)};
        const double len_ap = geom::distance(a, p);
        const double len_pb = geom::distance(p, b);
        std::vector<double> n1(n), n2(n);
        kernels::insertion_edge_deltas(xs.data(), ys.data(), n, a, p, b,
                                       len_ap, len_pb, n1.data(), n2.data());
        for (std::size_t i = 0; i < n; ++i) {
            const geom::Vec2 x{xs[i], ys[i]};
            const double d_xp = geom::distance(x, p);
            EXPECT_EQ(n1[i], geom::distance(a, x) + d_xp - len_ap)
                << "trial " << trial << " i=" << i;
            EXPECT_EQ(n2[i], d_xp + geom::distance(x, b) - len_pb)
                << "trial " << trial << " i=" << i;
        }
    }
}

TEST(BatchKernels, FillDistanceTileMatchesScalar) {
    util::Rng rng(13);
    const std::size_t n = 37;  // deliberately not a multiple of 8
    util::AlignedVector<double> xs(soa_padded(n), 0.0);
    util::AlignedVector<double> ys(soa_padded(n), 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        xs[i] = rng.uniform(0.0, 400.0);
        ys[i] = rng.uniform(0.0, 400.0);
    }
    const geom::Vec2 p{rng.uniform(0.0, 400.0), rng.uniform(0.0, 400.0)};
    std::vector<double> row(n, -1.0);
    // Two tiles with a seam in the middle of a lane group.
    kernels::fill_distance_tile(xs.data(), ys.data(), 0, 19, p.x, p.y,
                                row.data());
    kernels::fill_distance_tile(xs.data(), ys.data(), 19, n, p.x, p.y,
                                row.data());
    for (std::size_t c = 0; c < n; ++c) {
        EXPECT_EQ(row[c], geom::distance(p, geom::Vec2{xs[c], ys[c]}))
            << "col " << c;
    }
}

// --- The fuzz sweep: 50 generator instances, batched vs scalar, bitwise.

TEST(BatchKernels, FuzzedInstancesMatchScalarBitwise) {
    util::Rng rng(20260808);
    for (int trial = 0; trial < 50; ++trial) {
        const auto inst = fuzz_instance(rng, 1, 60);
        const DeviceSoa soa = build_device_soa(inst);
        const std::size_t n = soa.size();
        const geom::Vec2 q{rng.uniform(0.0, 500.0), rng.uniform(0.0, 500.0)};
        std::vector<double> d(n), d2(n);
        kernels::distances_to_point(soa.pos.xs.data(), soa.pos.ys.data(), n,
                                    q.x, q.y, d.data());
        kernels::squared_distances_to_point(soa.pos.xs.data(),
                                            soa.pos.ys.data(), n, q.x, q.y,
                                            d2.data());
        for (std::size_t v = 0; v < n; ++v) {
            EXPECT_EQ(d[v], geom::distance(inst.devices[v].pos, q))
                << "trial " << trial << " device " << v;
            EXPECT_EQ(d2[v], geom::distance2(inst.devices[v].pos, q))
                << "trial " << trial << " device " << v;
        }
        if (::testing::Test::HasFailure()) break;
    }
}

// --- Ordered reductions: bitwise against hand-rolled reference loops.

TEST(BatchKernels, OrderedReductionsMatchReferenceLoops) {
    util::Rng rng(5);
    const std::size_t m = 23;
    std::vector<std::int32_t> idx(m);
    util::AlignedVector<double> data(64, 0.0), upload(64, 0.0);
    std::vector<char> mask(64, 0);
    for (std::size_t j = 0; j < m; ++j) {
        idx[j] = static_cast<std::int32_t>(rng.uniform_int(0, 63));
        mask[static_cast<std::size_t>(idx[j])] =
            rng.uniform(0.0, 1.0) < 0.3 ? 1 : 0;
    }
    for (std::size_t v = 0; v < 64; ++v) {
        data[v] = rng.uniform(-10.0, 500.0);  // a few negatives, skipped
        upload[v] = rng.uniform(0.0, 80.0);
    }
    double sum = 0.0, mx = 0.0;
    for (std::size_t j = 0; j < m; ++j) {
        const auto v = static_cast<std::size_t>(idx[j]);
        if (mask[v] != 0 || data[v] <= 0.0) continue;
        sum += data[v];
        mx = std::max(mx, upload[v]);
    }
    const auto g = kernels::residual_gain_ordered(idx.data(), m, data.data(),
                                                  upload.data(), mask.data());
    EXPECT_EQ(g.sum_mb, sum);
    EXPECT_EQ(g.max_s, mx);

    double capped = 0.0;
    const double cap = 120.0;
    for (std::size_t j = 0; j < m; ++j) {
        capped += std::min(data[static_cast<std::size_t>(idx[j])], cap);
    }
    EXPECT_EQ(kernels::capped_sum_ordered(idx.data(), m, data.data(), cap),
              capped);
}

// --- Fast reductions: epsilon-close to ordered, bitwise-deterministic.

TEST(BatchKernels, FastReductionsAreCloseAndDeterministic) {
    util::Rng rng(31);
    for (const std::size_t m : {0u, 1u, 7u, 8u, 9u, 40u, 171u}) {
        std::vector<std::int32_t> idx(m);
        const std::size_t pool = std::max<std::size_t>(1, m);
        util::AlignedVector<double> data(pool, 0.0), upload(pool, 0.0);
        std::vector<char> mask(pool, 0);
        for (std::size_t j = 0; j < m; ++j) {
            idx[j] = static_cast<std::int32_t>(
                rng.uniform_int(0, static_cast<std::int64_t>(pool) - 1));
        }
        for (std::size_t v = 0; v < pool; ++v) {
            data[v] = rng.uniform(0.0, 900.0);
            upload[v] = rng.uniform(0.0, 90.0);
            mask[v] = rng.uniform(0.0, 1.0) < 0.2 ? 1 : 0;
        }
        const auto ordered = kernels::residual_gain_ordered(
            idx.data(), m, data.data(), upload.data(), mask.data());
        const auto fast = kernels::residual_gain_fast(
            idx.data(), m, data.data(), upload.data(), mask.data());
        const auto fast2 = kernels::residual_gain_fast(
            idx.data(), m, data.data(), upload.data(), mask.data());
        // max is exact under any association; the sum is epsilon-close.
        EXPECT_EQ(fast.max_s, ordered.max_s) << "m=" << m;
        EXPECT_EQ(fast.sum_mb, fast2.sum_mb) << "m=" << m;
        const double scale = std::max(1.0, std::abs(ordered.sum_mb));
        EXPECT_NEAR(fast.sum_mb, ordered.sum_mb, 1e-10 * scale) << "m=" << m;

        const double cap = 130.0;
        const double co =
            kernels::capped_sum_ordered(idx.data(), m, data.data(), cap);
        const double cf =
            kernels::capped_sum_fast(idx.data(), m, data.data(), cap);
        EXPECT_EQ(cf, kernels::capped_sum_fast(idx.data(), m, data.data(),
                                               cap))
            << "m=" << m;
        EXPECT_NEAR(cf, co, 1e-10 * std::max(1.0, std::abs(co))) << "m=" << m;
    }
}

}  // namespace
}  // namespace uavdc::core
