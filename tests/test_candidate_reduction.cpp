// Safety and determinism suite for the candidate-space reduction pipeline
// (core/candidate_reduction) and the correctness gaps scale-large exposed:
// reduction must never drop the last candidate covering any device, reduced
// planning must stay bit-identical across thread counts, the int32 CSR
// narrowing in build_candidate_soa must be guarded, conformance tolerances
// must be validated, and the service response cache must survive forged
// 128-bit key collisions without cross-replaying payloads.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <set>
#include <string>
#include <vector>

#include "test_util.hpp"
#include "uavdc/core/algorithm2.hpp"
#include "uavdc/core/algorithm3.hpp"
#include "uavdc/core/candidate_reduction.hpp"
#include "uavdc/conformance/conformance.hpp"
#include "uavdc/core/planning_context.hpp"
#include "uavdc/core/soa_layout.hpp"
#include "uavdc/service/plan_service.hpp"
#include "uavdc/service/request.hpp"
#include "uavdc/util/check.hpp"
#include "uavdc/util/rng.hpp"
#include "uavdc/workload/generator.hpp"

namespace uavdc {
namespace {

using core::Algorithm2Config;
using core::Algorithm3Config;
using core::CandidateReductionConfig;
using core::GreedyCoveragePlanner;
using core::HoverCandidateConfig;
using core::HoverCandidateSet;
using core::PartialCollectionPlanner;
using core::PlanningContext;
using core::PlanResult;
using core::ReducedCandidates;
using util::ContractViolation;

/// Seeded conformance-style instance (same knobs fuzz_conformance turns).
model::Instance fuzz_instance(util::Rng& rng, int min_devices,
                              int max_devices) {
    constexpr workload::Deployment kDeployments[] = {
        workload::Deployment::kUniform,    workload::Deployment::kClustered,
        workload::Deployment::kGridJitter, workload::Deployment::kRing};
    workload::GeneratorConfig g;
    g.num_devices =
        static_cast<int>(rng.uniform_int(min_devices, max_devices));
    g.region_w = rng.uniform(150.0, 500.0);
    g.region_h = rng.uniform(150.0, 500.0);
    g.deployment =
        kDeployments[static_cast<std::size_t>(rng.uniform_int(0, 3))];
    g.min_mb = rng.uniform(20.0, 150.0);
    g.max_mb = g.min_mb + rng.uniform(50.0, 800.0);
    g.uav.energy_j = rng.uniform(2.0e4, 1.2e5);
    return workload::generate(g, rng.next_u64());
}

HoverCandidateConfig hover_cfg(const model::Instance& inst) {
    HoverCandidateConfig c;
    c.delta_m = std::max(
        10.0, std::max(inst.region.width(), inst.region.height()) / 15.0);
    return c;
}

std::set<int> covered_devices(const HoverCandidateSet& set) {
    std::set<int> out;
    for (const auto& c : set.candidates) {
        out.insert(c.covered.begin(), c.covered.end());
    }
    return out;
}

// --- Coverage safety: no reduction stage may orphan a coverable device.

TEST(CandidateReduction, NeverDropsLastCovererOfAnyDevice) {
    util::Rng rng(20260809);
    const CandidateReductionConfig profiles[] = {
        [] { CandidateReductionConfig c; c.dominance = true; return c; }(),
        [] {
            CandidateReductionConfig c;
            c.dominance = true;
            c.dominance_dwell_slack = 0.05;
            return c;
        }(),
        [] { CandidateReductionConfig c; c.coarsen_factor = 3; return c; }(),
        [] {
            CandidateReductionConfig c;
            c.coarsen_factor = 6;
            c.consolidate_to = 12;
            return c;
        }(),
        [] {
            CandidateReductionConfig c;
            c.dominance = true;
            c.coarsen_factor = 2;
            c.consolidate_to = 24;
            return c;
        }(),
    };
    for (int trial = 0; trial < 25; ++trial) {
        const auto inst = fuzz_instance(rng, 8, 60);
        const auto ctx = PlanningContext::build(inst, hover_cfg(inst));
        const auto& full = ctx->candidates();
        const std::set<int> want = covered_devices(full);
        for (std::size_t p = 0; p < std::size(profiles); ++p) {
            const ReducedCandidates red = core::reduce_candidates(
                full, inst.devices.size(), profiles[p]);
            SCOPED_TRACE("trial " + std::to_string(trial) + " profile " +
                         std::to_string(p));
            EXPECT_EQ(covered_devices(red.set), want);
            EXPECT_LE(red.set.size(), full.size());
            EXPECT_EQ(red.stats.kept,
                      static_cast<int>(red.set.candidates.size()));
        }
        if (::testing::Test::HasFailure()) break;
    }
}

TEST(CandidateReduction, SurvivorsAreExactOriginals) {
    util::Rng rng(17);
    const auto inst = fuzz_instance(rng, 20, 60);
    const auto ctx = PlanningContext::build(inst, hover_cfg(inst));
    const auto& full = ctx->candidates();
    CandidateReductionConfig cfg;
    cfg.dominance = true;
    cfg.coarsen_factor = 2;
    const ReducedCandidates red =
        core::reduce_candidates(full, inst.devices.size(), cfg);
    ASSERT_EQ(red.original_index.size(), red.set.candidates.size());
    std::int32_t prev = -1;
    for (std::size_t i = 0; i < red.set.candidates.size(); ++i) {
        const std::int32_t oi = red.original_index[i];
        ASSERT_GE(oi, 0);
        ASSERT_LT(static_cast<std::size_t>(oi), full.size());
        EXPECT_GT(oi, prev) << "survivors must keep original order";
        prev = oi;
        const auto& a = red.set.candidates[i];
        const auto& b = full.candidates[static_cast<std::size_t>(oi)];
        EXPECT_EQ(a.pos.x, b.pos.x);
        EXPECT_EQ(a.pos.y, b.pos.y);
        EXPECT_EQ(a.cell_id, b.cell_id);
        EXPECT_EQ(a.award_mb, b.award_mb);
        EXPECT_EQ(a.dwell_s, b.dwell_s);
        EXPECT_EQ(a.covered, b.covered);
    }
}

// --- Context memo: one reduction per distinct config, stable addresses.

TEST(CandidateReduction, ContextMemoizesPerFingerprint) {
    const auto inst = testing::small_instance(30);
    const auto ctx = PlanningContext::build(inst, hover_cfg(inst));
    CandidateReductionConfig a;
    a.coarsen_factor = 2;
    CandidateReductionConfig b;
    b.coarsen_factor = 3;
    const ReducedCandidates* ra = &ctx->reduced_candidates(a);
    const ReducedCandidates* rb = &ctx->reduced_candidates(b);
    EXPECT_NE(ra, rb);
    EXPECT_EQ(ra, &ctx->reduced_candidates(a));
    EXPECT_EQ(rb, &ctx->reduced_candidates(b));
    EXPECT_NE(a.fingerprint(), b.fingerprint());
}

// --- Determinism: reduced planning is bit-identical serial vs pooled.

void expect_identical(const PlanResult& a, const PlanResult& b,
                      const std::string& what) {
    SCOPED_TRACE(what);
    ASSERT_EQ(a.plan.stops.size(), b.plan.stops.size());
    for (std::size_t i = 0; i < a.plan.stops.size(); ++i) {
        EXPECT_EQ(a.plan.stops[i].pos.x, b.plan.stops[i].pos.x) << i;
        EXPECT_EQ(a.plan.stops[i].pos.y, b.plan.stops[i].pos.y) << i;
        EXPECT_EQ(a.plan.stops[i].dwell_s, b.plan.stops[i].dwell_s) << i;
        EXPECT_EQ(a.plan.stops[i].cell_id, b.plan.stops[i].cell_id) << i;
    }
    EXPECT_EQ(a.stats.planned_mb, b.stats.planned_mb);
    EXPECT_EQ(a.stats.planned_energy_j, b.stats.planned_energy_j);
    EXPECT_EQ(a.stats.iterations, b.stats.iterations);
}

TEST(CandidateReduction, ReducedPlansBitIdenticalAcrossThreadCounts) {
    util::Rng rng(404);
    for (int trial = 0; trial < 12; ++trial) {
        const auto inst = fuzz_instance(rng, 10, 50);
        const auto ctx = PlanningContext::build(inst, hover_cfg(inst));
        CandidateReductionConfig red;
        red.dominance = true;
        red.coarsen_factor = 2;
        red.refine_band_m = 4.0 * hover_cfg(inst).delta_m;

        Algorithm2Config a2;
        a2.candidates = hover_cfg(inst);
        a2.reduction = red;
        PlanResult alg2[2];
        Algorithm3Config a3;
        a3.candidates = hover_cfg(inst);
        a3.reduction = red;
        PlanResult alg3[2];
        int slot = 0;
        for (const int threshold : {0, 1}) {  // forced parallel / serial
            a2.parallel_threshold = threshold;
            a3.parallel_threshold = threshold;
            alg2[slot] = GreedyCoveragePlanner(a2).plan(*ctx);
            alg3[slot] = PartialCollectionPlanner(a3).plan(*ctx);
            ++slot;
        }
        const std::string tag = "trial " + std::to_string(trial);
        expect_identical(alg2[0], alg2[1], tag + " alg2 par vs serial");
        expect_identical(alg3[0], alg3[1], tag + " alg3 par vs serial");
        if (::testing::Test::HasFailure()) break;
    }
}

// --- build_candidate_soa int32 narrowing guards.

TEST(CandidateSoaGuards, AcceptsValidCoverage) {
    HoverCandidateSet set;
    set.candidates.push_back({{1.0, 2.0}, 0, {0, 2}, 30.0, 1.0, 10.0});
    set.candidates.push_back({{3.0, 4.0}, 1, {1}, 20.0, 0.5, 5.0});
    const auto soa = core::build_candidate_soa(set, 3);
    EXPECT_EQ(soa.size(), 2u);
}

TEST(CandidateSoaGuards, RejectsDeviceIdAtOrAboveCount) {
    HoverCandidateSet set;
    set.candidates.push_back({{1.0, 2.0}, 0, {2}, 30.0, 1.0, 10.0});
    EXPECT_THROW((void)core::build_candidate_soa(set, 2), ContractViolation);
}

TEST(CandidateSoaGuards, RejectsNegativeDeviceId) {
    HoverCandidateSet set;
    set.candidates.push_back({{1.0, 2.0}, 0, {-1}, 30.0, 1.0, 10.0});
    EXPECT_THROW((void)core::build_candidate_soa(set, 4), ContractViolation);
}

TEST(CandidateSoaGuards, RejectsDeviceCountBeyondInt32) {
    // The device-count check fires before any allocation, so the absurd
    // count is safe to pass.
    const auto huge =
        static_cast<std::size_t>(std::numeric_limits<std::int32_t>::max()) +
        1;
    HoverCandidateSet set;
    set.candidates.push_back({{1.0, 2.0}, 0, {0}, 30.0, 1.0, 10.0});
    EXPECT_THROW((void)core::build_candidate_soa(set, huge),
                 ContractViolation);
}

// --- Conformance tolerance validation (fast_rel_tol / reduction_rel_tol).

TEST(ConformanceTolerances, RejectsInvalidValues) {
    for (const double bad :
         {0.0, -1.0, 1.5, std::numeric_limits<double>::quiet_NaN(),
          std::numeric_limits<double>::infinity()}) {
        SCOPED_TRACE(bad);
        conformance::ConformanceFuzzConfig fast;
        fast.instances = 1;
        fast.fast_rel_tol = bad;
        EXPECT_THROW((void)conformance::fuzz_conformance(fast), ContractViolation);

        conformance::ConformanceFuzzConfig red;
        red.instances = 1;
        red.reduction_rel_tol = bad;
        EXPECT_THROW((void)conformance::fuzz_conformance(red), ContractViolation);
    }
}

TEST(ConformanceTolerances, AcceptsBoundaryValueOne) {
    conformance::ConformanceFuzzConfig cfg;
    cfg.instances = 1;
    cfg.planners = {"alg2"};
    cfg.stress_energy = false;
    cfg.fast_rel_tol = 1.0;
    cfg.reduction_rel_tol = 1.0;
    const auto summary = conformance::fuzz_conformance(cfg);
    EXPECT_TRUE(summary.ok());
}

// --- Response cache: forged 128-bit key collisions must not cross-replay.

io::Json payload(const std::string& tag) {
    io::Json j;
    j["tag"] = tag;
    return j;
}

TEST(ResponseCacheCollision, KeyMatchWithDifferentOptionsIsMiss) {
    service::ResponseCache cache(8);
    // Two logical requests forged to share the full 128-bit key but with
    // different resolved options — the documented collision exposure.
    cache.put(0xdeadbeefull, 0x1234ull, "opts-a", 111, payload("a"));
    const auto cross = cache.get(0xdeadbeefull, 0x1234ull, "opts-b", 111);
    EXPECT_FALSE(cross.found) << "cross-replayed a colliding payload";
    EXPECT_EQ(cache.misses(), 1u);

    const auto hit = cache.get(0xdeadbeefull, 0x1234ull, "opts-a", 111);
    ASSERT_TRUE(hit.found);
    EXPECT_EQ(hit.result.at("tag").as_string(), "a");
}

TEST(ResponseCacheCollision, KeyMatchWithDifferentInstanceIsMiss) {
    service::ResponseCache cache(8);
    cache.put(7, 9, "opts", 1001, payload("first"));
    EXPECT_FALSE(cache.get(7, 9, "opts", 2002).found);

    // Cache the second instance under the same forged key. Lookup stops at
    // the first key match, so the older colliding entry is shadowed — a
    // miss, never the *wrong* payload — and the verified lookup returns
    // exactly its own payload.
    cache.put(7, 9, "opts", 2002, payload("second"));
    const auto a = cache.get(7, 9, "opts", 1001);
    const auto b = cache.get(7, 9, "opts", 2002);
    EXPECT_FALSE(a.found) << "shadowed collider must miss, not cross-replay";
    ASSERT_TRUE(b.found);
    EXPECT_EQ(b.result.at("tag").as_string(), "second");
}

TEST(ResponseCacheCollision, CanonicalOptionsSeparateReductionConfigs) {
    core::PlannerOptions a;
    core::PlannerOptions b = a;
    b.reduction.coarsen_factor = 4;
    EXPECT_NE(service::canonical_options("alg2", a),
              service::canonical_options("alg2", b));
    EXPECT_NE(service::canonical_options("alg2", a),
              service::canonical_options("alg3", a));
}

// --- Service overrides: reduction fields survive the wire format.

TEST(ReductionOverrides, JsonRoundTripAndResolve) {
    service::PlanRequest req;
    req.id = "r1";
    req.planner = "alg2";
    req.instance = testing::small_instance(8);
    req.overrides.reduce = true;
    req.overrides.reduce_coarsen = 4;
    req.overrides.reduce_band_m = 25.0;
    req.overrides.reduce_consolidate = 64;

    const auto round = service::request_from_json(service::to_json(req));
    ASSERT_TRUE(round.overrides.reduce.has_value());
    EXPECT_TRUE(*round.overrides.reduce);
    EXPECT_EQ(round.overrides.reduce_coarsen, 4);
    EXPECT_EQ(round.overrides.reduce_band_m, 25.0);
    EXPECT_EQ(round.overrides.reduce_consolidate, 64);

    const core::PlannerOptions resolved =
        round.overrides.resolve(core::PlannerOptions{});
    EXPECT_TRUE(resolved.reduction.dominance);
    EXPECT_EQ(resolved.reduction.coarsen_factor, 4);
    EXPECT_EQ(resolved.reduction.refine_band_m, 25.0);
    EXPECT_EQ(resolved.reduction.consolidate_to, 64);
    EXPECT_TRUE(resolved.reduction.enabled());
}

}  // namespace
}  // namespace uavdc
