#include "uavdc/util/check.hpp"

#include <gtest/gtest.h>

#include <string>

namespace uavdc::util {
namespace {

TEST(Check, PassingConditionIsSilent) {
    EXPECT_NO_THROW(UAVDC_CHECK(1 + 1 == 2));
    EXPECT_NO_THROW(UAVDC_REQUIRE(true) << "never rendered");
    EXPECT_NO_THROW(UAVDC_DCHECK(true));
}

TEST(Check, FailingConditionThrowsContractViolation) {
    EXPECT_THROW(UAVDC_CHECK(false), ContractViolation);
    EXPECT_THROW(UAVDC_REQUIRE(false), ContractViolation);
    // ContractViolation remains catchable as std::runtime_error so legacy
    // catch sites keep working.
    EXPECT_THROW(UAVDC_CHECK(false), std::runtime_error);
}

TEST(Check, MessageStreamingReachesTheException) {
    const int x = -3;
    try {
        UAVDC_CHECK(x >= 0) << "x=" << x << " must be non-negative";
        FAIL() << "UAVDC_CHECK(false) did not throw";
    } catch (const ContractViolation& e) {
        EXPECT_EQ(e.message(), "x=-3 must be non-negative");
        EXPECT_NE(std::string(e.what()).find("x=-3 must be non-negative"),
                  std::string::npos);
    }
}

TEST(Check, CarriesExpressionFileAndLine) {
    try {
        UAVDC_REQUIRE(2 + 2 == 5);
        FAIL() << "UAVDC_REQUIRE(false) did not throw";
    } catch (const ContractViolation& e) {
        EXPECT_EQ(e.kind(), "UAVDC_REQUIRE");
        EXPECT_EQ(e.expression(), "2 + 2 == 5");
        EXPECT_NE(e.file().find("test_check.cpp"), std::string::npos);
        EXPECT_GT(e.line(), 0);
        // what() embeds file:line so a bare log line locates the site.
        const std::string what = e.what();
        const std::string file_line =
            e.file() + ":" + std::to_string(e.line());
        EXPECT_NE(what.find(file_line), std::string::npos);
        EXPECT_NE(what.find("2 + 2 == 5"), std::string::npos);
    }
}

TEST(Check, EmptyMessageStillFormatsFileLine) {
    try {
        UAVDC_CHECK(false);
        FAIL() << "UAVDC_CHECK(false) did not throw";
    } catch (const ContractViolation& e) {
        EXPECT_TRUE(e.message().empty());
        EXPECT_NE(std::string(e.what()).find(":"), std::string::npos);
    }
}

int& evaluation_counter() {
    static int count = 0;
    return count;
}

bool count_and_fail() {
    ++evaluation_counter();
    return false;
}

TEST(Check, DcheckBehaviourMatchesBuildMode) {
    evaluation_counter() = 0;
#ifdef NDEBUG
    // Release: the condition is never evaluated and nothing throws; the
    // expression must still compile.
    EXPECT_NO_THROW(UAVDC_DCHECK(count_and_fail()) << "unseen");
    EXPECT_EQ(evaluation_counter(), 0);
#else
    // Debug: behaves exactly like UAVDC_CHECK.
    EXPECT_THROW(UAVDC_DCHECK(count_and_fail()) << "seen", ContractViolation);
    EXPECT_EQ(evaluation_counter(), 1);
#endif
}

TEST(Check, ChecksAreUsableInIfElseWithoutBraces) {
    // The macros expand to a single expression, so dangling-else is safe.
    bool reached_else = false;
    if (1 == 2)
        UAVDC_CHECK(true);
    else
        reached_else = true;
    EXPECT_TRUE(reached_else);
}

}  // namespace
}  // namespace uavdc::util
