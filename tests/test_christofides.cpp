#include "uavdc/graph/christofides.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>
#include <vector>

#include "uavdc/graph/mst.hpp"
#include "uavdc/util/rng.hpp"

namespace uavdc::graph {
namespace {

std::vector<geom::Vec2> random_points(int n, std::uint64_t seed,
                                      double side = 100.0) {
    util::Rng rng(seed);
    std::vector<geom::Vec2> pts;
    for (int i = 0; i < n; ++i) {
        pts.push_back({rng.uniform(0.0, side), rng.uniform(0.0, side)});
    }
    return pts;
}

void check_is_tour(const std::vector<std::size_t>& tour, std::size_t n,
                   std::size_t start) {
    ASSERT_EQ(tour.size(), n);
    EXPECT_EQ(tour.front(), start);
    std::set<std::size_t> seen(tour.begin(), tour.end());
    EXPECT_EQ(seen.size(), n) << "tour repeats a node";
}

/// Brute-force optimal tour for tiny n.
double brute_force_opt(const DenseGraph& g) {
    std::vector<std::size_t> perm(g.size());
    std::iota(perm.begin(), perm.end(), std::size_t{0});
    double best = 1e18;
    do {
        best = std::min(best, g.tour_length(perm));
    } while (std::next_permutation(perm.begin() + 1, perm.end()));
    return best;
}

TEST(Christofides, TrivialSizes) {
    EXPECT_TRUE(christofides_tour(DenseGraph(0)).empty());
    EXPECT_EQ(christofides_tour(DenseGraph(1)),
              std::vector<std::size_t>{0});
    DenseGraph g2(2);
    g2.set_weight(0, 1, 1.0);
    EXPECT_EQ(christofides_tour(g2, 0),
              (std::vector<std::size_t>{0, 1}));
    EXPECT_EQ(christofides_tour(g2, 1),
              (std::vector<std::size_t>{1, 0}));
}

TEST(Christofides, VisitsEveryNodeOnce) {
    const auto pts = random_points(40, 5);
    const DenseGraph g = DenseGraph::euclidean(pts);
    const auto tour = christofides_tour(g, 0);
    check_is_tour(tour, g.size(), 0);
}

TEST(Christofides, RespectsStartNode) {
    const auto pts = random_points(15, 6);
    const DenseGraph g = DenseGraph::euclidean(pts);
    const auto tour = christofides_tour(g, 7);
    check_is_tour(tour, g.size(), 7);
}

TEST(Christofides, AtMostTwiceMstLowerBound) {
    // MST weight is a lower bound on the optimal tour; Christofides (even
    // with greedy matching + local search) stays within 2x MST on Euclidean
    // instances.
    for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u, 6u}) {
        const auto pts = random_points(60, seed);
        const DenseGraph g = DenseGraph::euclidean(pts);
        const double mst_w = total_weight(mst_prim(g));
        const double tour_w = g.tour_length(christofides_tour(g, 0));
        EXPECT_LE(tour_w, 2.0 * mst_w + 1e-9) << "seed " << seed;
        EXPECT_GE(tour_w, mst_w - 1e-9) << "seed " << seed;
    }
}

TEST(Christofides, NearOptimalOnTinyInstances) {
    for (std::uint64_t seed : {10u, 11u, 12u, 13u}) {
        const auto pts = random_points(8, seed);
        const DenseGraph g = DenseGraph::euclidean(pts);
        const double opt = brute_force_opt(g);
        const double got = g.tour_length(christofides_tour(g, 0));
        EXPECT_LE(got, 1.5 * opt + 1e-9) << "seed " << seed;
    }
}

TEST(Christofides, CollinearPoints) {
    std::vector<geom::Vec2> pts;
    for (int i = 0; i < 10; ++i) pts.push_back({static_cast<double>(i), 0.0});
    const DenseGraph g = DenseGraph::euclidean(pts);
    const auto tour = christofides_tour(g, 0);
    check_is_tour(tour, 10, 0);
    // Optimal is 18 (sweep right and come back).
    EXPECT_NEAR(g.tour_length(tour), 18.0, 1e-9);
}

TEST(Christofides, CoincidentPoints) {
    const std::vector<geom::Vec2> pts{
        {0.0, 0.0}, {0.0, 0.0}, {1.0, 0.0}, {1.0, 0.0}};
    const DenseGraph g = DenseGraph::euclidean(pts);
    const auto tour = christofides_tour(g, 0);
    check_is_tour(tour, 4, 0);
    EXPECT_NEAR(g.tour_length(tour), 2.0, 1e-9);
}

TEST(Christofides, ConfigDisablesImprovement) {
    const auto pts = random_points(30, 20);
    const DenseGraph g = DenseGraph::euclidean(pts);
    ChristofidesConfig raw;
    raw.improve_two_opt = false;
    raw.improve_or_opt = false;
    const auto rough = christofides_tour(g, 0, raw);
    const auto polished = christofides_tour(g, 0);
    check_is_tour(rough, g.size(), 0);
    EXPECT_LE(g.tour_length(polished), g.tour_length(rough) + 1e-9);
}

TEST(Christofides, SubtourOverNodeSubset) {
    const auto pts = random_points(20, 30);
    const DenseGraph g = DenseGraph::euclidean(pts);
    const std::vector<std::size_t> subset{4, 9, 2, 17, 11};
    const auto tour = christofides_subtour(g, subset);
    ASSERT_EQ(tour.size(), subset.size());
    EXPECT_EQ(tour.front(), subset.front());
    const std::set<std::size_t> want(subset.begin(), subset.end());
    const std::set<std::size_t> got(tour.begin(), tour.end());
    EXPECT_EQ(got, want);
}

TEST(Christofides, SubtourEmpty) {
    const DenseGraph g(5);
    EXPECT_TRUE(christofides_subtour(g, {}).empty());
}

TEST(EuclideanTourLength, MatchesGraph) {
    const auto pts = random_points(12, 44);
    const DenseGraph g = DenseGraph::euclidean(pts);
    const auto tour = christofides_tour(g, 0);
    EXPECT_NEAR(euclidean_tour_length(pts, tour), g.tour_length(tour), 1e-9);
}

}  // namespace
}  // namespace uavdc::graph
