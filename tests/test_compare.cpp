#include "uavdc/core/compare.hpp"

#include <gtest/gtest.h>

#include "uavdc/util/check.hpp"

#include "test_util.hpp"

namespace uavdc::core {
namespace {

TEST(Compare, RunsAllRegisteredPlannersSortedByVolume) {
    const auto inst = testing::small_instance(25, 280.0, 91);
    PlannerOptions opts;
    opts.delta_m = 20.0;
    opts.grasp_iterations = 3;
    const auto results = compare_planners(inst, opts);
    EXPECT_EQ(results.size(), planner_names().size());
    for (std::size_t i = 1; i < results.size(); ++i) {
        EXPECT_GE(results[i - 1].evaluation.collected_mb,
                  results[i].evaluation.collected_mb);
    }
    for (const auto& r : results) {
        EXPECT_FALSE(r.name.empty());
        EXPECT_TRUE(r.evaluation.energy_feasible) << r.name;
        EXPECT_NEAR(r.metrics.collected_mb, r.evaluation.collected_mb,
                    1e-6)
            << r.name;
        EXPECT_GE(r.runtime_s, 0.0);
    }
}

TEST(Compare, SubsetSelection) {
    const auto inst = testing::small_instance(15, 200.0, 92);
    PlannerOptions opts;
    opts.delta_m = 25.0;
    const auto results =
        compare_planners(inst, opts, {"alg2", "benchmark"});
    ASSERT_EQ(results.size(), 2u);
    // Both requested planners present (order by volume).
    const bool has_alg2 = results[0].name == "alg2-greedy" ||
                          results[1].name == "alg2-greedy";
    const bool has_bench =
        results[0].name == "benchmark" || results[1].name == "benchmark";
    EXPECT_TRUE(has_alg2);
    EXPECT_TRUE(has_bench);
}

TEST(Compare, UnknownNameThrows) {
    const auto inst = testing::small_instance(5, 100.0, 93);
    EXPECT_THROW((void)compare_planners(inst, {}, {"alg99"}),
                 util::ContractViolation);
}

TEST(Compare, PooledRunMatchesSerialBitForBit) {
    const auto inst = testing::small_instance(20, 260.0, 94);
    PlannerOptions opts;
    opts.delta_m = 22.0;
    opts.grasp_iterations = 3;
    const auto serial = compare_planners(inst, opts);
    util::ThreadPool pool(4);
    const auto pooled = compare_planners(inst, opts, {}, &pool);
    ASSERT_EQ(serial.size(), pooled.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].name, pooled[i].name);
        EXPECT_EQ(serial[i].plan.stops.size(), pooled[i].plan.stops.size());
        EXPECT_DOUBLE_EQ(serial[i].evaluation.collected_mb,
                         pooled[i].evaluation.collected_mb);
        EXPECT_DOUBLE_EQ(serial[i].evaluation.energy_spent_j,
                         pooled[i].evaluation.energy_spent_j);
        for (std::size_t s = 0; s < serial[i].plan.stops.size(); ++s) {
            EXPECT_DOUBLE_EQ(serial[i].plan.stops[s].pos.x,
                             pooled[i].plan.stops[s].pos.x);
            EXPECT_DOUBLE_EQ(serial[i].plan.stops[s].pos.y,
                             pooled[i].plan.stops[s].pos.y);
            EXPECT_DOUBLE_EQ(serial[i].plan.stops[s].dwell_s,
                             pooled[i].plan.stops[s].dwell_s);
        }
    }
}

TEST(Compare, PooledRunPropagatesPlannerFailures) {
    const auto inst = testing::small_instance(5, 100.0, 95);
    util::ThreadPool pool(2);
    // A single name drops to the serial path; mix the bad name with valid
    // ones so the pooled fan-out itself handles the failure. The unknown
    // planner is listed first so sibling tasks are still queued/running
    // when its exception surfaces — the fan-out must drain them before
    // rethrowing instead of abandoning futures over this frame's locals.
    EXPECT_THROW((void)compare_planners(
                     inst, {}, {"alg99", "alg2", "benchmark"}, &pool),
                 util::ContractViolation);
}

}  // namespace
}  // namespace uavdc::core
