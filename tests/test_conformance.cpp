#include "uavdc/conformance/conformance.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"
#include "uavdc/model/energy_view.hpp"
#include "uavdc/core/registry.hpp"
#include "uavdc/util/check.hpp"
#include "uavdc/util/thread_pool.hpp"

namespace uavdc::conformance {
namespace {

using testing::manual_instance;
using testing::small_instance;

std::string describe(const ConformanceReport& rep) {
    std::string out;
    for (const auto& m : rep.mismatches) {
        out += "[" + to_string(m.check) + "] " + m.field + ": expected " +
               std::to_string(m.expected) + ", got " +
               std::to_string(m.actual) + " (" + m.detail + ")\n";
    }
    return out;
}

TEST(Conformance, FeasiblePlanAgreesAcrossLayers) {
    const auto inst = small_instance(25, 280.0, 21);
    for (const auto& name : core::planner_names()) {
        const auto res = core::make_planner(name)->plan(inst);
        const auto rep = check_conformance(inst, res.plan);
        EXPECT_TRUE(rep.ok()) << "planner " << name << ":\n"
                              << describe(rep);
        EXPECT_FALSE(rep.evaluation.truncated);
        EXPECT_TRUE(rep.simulation.completed);
    }
}

TEST(Conformance, InfeasiblePlanStillAgrees) {
    // Shrink the battery under a previously feasible plan: the simulator
    // aborts mid-tour and the evaluator must truncate to the same numbers.
    auto inst = small_instance(25, 280.0, 22);
    const auto res = core::make_planner("alg2")->plan(inst);
    inst.uav.energy_j *= 0.4;
    const auto rep = check_conformance(inst, res.plan);
    EXPECT_TRUE(rep.ok()) << describe(rep);
    EXPECT_TRUE(rep.simulation.battery_depleted);
    EXPECT_TRUE(rep.evaluation.truncated);
    EXPECT_FALSE(rep.validation.ok());  // validator flagged it too
}

TEST(Conformance, EnergyModelsTripleEqual) {
    const auto inst = small_instance(15, 220.0, 23);
    const auto res = core::make_planner("alg3")->plan(inst);
    const auto rep = check_conformance(inst, res.plan);
    for (const auto& m : rep.mismatches) {
        EXPECT_NE(m.check, ConformanceMismatch::Check::kEnergyModels)
            << describe(rep);
    }
    // And explicitly: the plan's breakdown equals the EnergyView reading.
    const model::EnergyView view(inst.uav);
    EXPECT_DOUBLE_EQ(res.plan.energy(inst.depot, inst.uav).total_j(),
                     view.tour_cost(res.plan.travel_length(inst.depot),
                                    res.plan.hover_time()));
}

TEST(Conformance, DetectsEvaluatorDriftWhenPlanMutated) {
    // Sanity-check the oracle itself: an instance whose device volumes are
    // changed after evaluation must produce mismatches (evaluate one
    // instance, simulate another).
    const auto inst = manual_instance({{{50.0, 50.0}, 300.0}});
    model::FlightPlan plan;
    plan.stops.push_back({{50.0, 50.0}, 2.0, -1});
    auto rep = check_conformance(inst, plan);
    ASSERT_TRUE(rep.ok()) << describe(rep);
    // Forge a mismatch by hand to exercise the reporting path.
    rep.mismatches.push_back(
        {ConformanceMismatch::Check::kEvaluatorVsSimulator, "collected_mb",
         1.0, 2.0, "forged"});
    EXPECT_FALSE(rep.ok());
    EXPECT_EQ(to_string(rep.mismatches.back().check),
              "evaluator-vs-simulator");
}

TEST(Conformance, EmptyPlanConforms) {
    const auto inst = manual_instance({{{50.0, 50.0}, 300.0}});
    const auto rep = check_conformance(inst, {});
    EXPECT_TRUE(rep.ok()) << describe(rep);
    EXPECT_DOUBLE_EQ(rep.evaluation.collected_mb, 0.0);
}

// The acceptance gate: >= 100 fuzzed instances x every registered planner,
// each plan cross-checked against the full instance and a battery-starved
// variant. Deterministic for the fixed seed.
TEST(Conformance, FuzzHundredInstancesAllPlanners) {
    ConformanceFuzzConfig cfg;
    cfg.instances = 100;
    cfg.seed = 20260806;
    const auto summary = fuzz_conformance(cfg);
    EXPECT_EQ(summary.instances, 100);
    const int planners = static_cast<int>(core::planner_names().size());
    EXPECT_EQ(summary.plans_checked, 100 * planners * 2);  // + stressed
    EXPECT_TRUE(summary.ok());
    for (const auto& f : summary.failures) {
        ADD_FAILURE() << "planner " << f.planner << " on seed "
                      << f.instance_seed
                      << (f.stressed ? " (stressed)" : "") << ": "
                      << f.mismatches.size() << " mismatches, first: "
                      << f.mismatches.front().field << " expected "
                      << f.mismatches.front().expected << " got "
                      << f.mismatches.front().actual;
    }
}

// Epsilon tier: opt-in kIncrementalFast cross-check. Each scoring-aware
// planner contributes two extra checks per instance — the fast plan's own
// cross-layer conformance, and the fast-vs-default outcome drift.
TEST(Conformance, FastScoringEpsilonTier) {
    ConformanceFuzzConfig cfg;
    cfg.instances = 12;
    cfg.seed = 20260808;
    cfg.planners = {"alg2", "alg3", "benchmark"};
    cfg.check_fast_scoring = true;
    const auto summary = fuzz_conformance(cfg);
    EXPECT_EQ(summary.instances, 12);
    // base + stressed + fast-conformance + drift = 4 per (instance, planner)
    EXPECT_EQ(summary.plans_checked, 12 * 3 * 4);
    EXPECT_TRUE(summary.ok());
    for (const auto& f : summary.failures) {
        ADD_FAILURE() << "planner " << f.planner << " on seed "
                      << f.instance_seed << ": " << f.mismatches.size()
                      << " mismatches, first: ["
                      << to_string(f.mismatches.front().check) << "] "
                      << f.mismatches.front().field << " expected "
                      << f.mismatches.front().expected << " got "
                      << f.mismatches.front().actual;
    }
}

TEST(Conformance, FuzzIsDeterministic) {
    ConformanceFuzzConfig cfg;
    cfg.instances = 5;
    cfg.seed = 99;
    const auto a = fuzz_conformance(cfg);
    const auto b = fuzz_conformance(cfg);
    EXPECT_EQ(a.plans_checked, b.plans_checked);
    EXPECT_EQ(a.mismatches, b.mismatches);
    EXPECT_EQ(a.failures.size(), b.failures.size());
}

TEST(Conformance, PooledFuzzPropagatesUnknownPlanner) {
    ConformanceFuzzConfig cfg;
    cfg.instances = 6;
    cfg.seed = 78;
    cfg.planners = {"no-such-planner", "alg2"};
    util::ThreadPool pool(4);
    cfg.pool = &pool;
    // Every instance task hits make_planner on the unknown name; the
    // fan-out must drain all sibling futures (which still write into the
    // frame's `results`) before rethrowing the first failure.
    EXPECT_THROW((void)fuzz_conformance(cfg), util::ContractViolation);
}

TEST(Conformance, PooledFuzzMatchesSerial) {
    ConformanceFuzzConfig cfg;
    cfg.instances = 8;
    cfg.seed = 77;
    cfg.planners = {"alg2", "benchmark"};
    const auto serial = fuzz_conformance(cfg);

    util::ThreadPool pool(4);
    cfg.pool = &pool;
    const auto pooled = fuzz_conformance(cfg);
    EXPECT_EQ(serial.instances, pooled.instances);
    EXPECT_EQ(serial.plans_checked, pooled.plans_checked);
    EXPECT_EQ(serial.mismatches, pooled.mismatches);
    ASSERT_EQ(serial.failures.size(), pooled.failures.size());
    for (std::size_t i = 0; i < serial.failures.size(); ++i) {
        EXPECT_EQ(serial.failures[i].instance_seed,
                  pooled.failures[i].instance_seed);
        EXPECT_EQ(serial.failures[i].planner, pooled.failures[i].planner);
        EXPECT_EQ(serial.failures[i].stressed, pooled.failures[i].stressed);
    }
}

}  // namespace
}  // namespace uavdc::conformance
