#include "uavdc/geom/coverage.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "uavdc/util/rng.hpp"

namespace uavdc::geom {
namespace {

TEST(CoverageIndex, SimpleLayout) {
    const std::vector<Vec2> centers{{0.0, 0.0}, {100.0, 0.0}};
    const std::vector<Vec2> devices{{10.0, 0.0}, {95.0, 5.0}, {50.0, 0.0}};
    const CoverageIndex cov(centers, devices, 20.0);
    EXPECT_EQ(cov.covered(0), std::vector<int>{0});
    EXPECT_EQ(cov.covered(1), std::vector<int>{1});
    EXPECT_EQ(cov.covering(0), std::vector<int>{0});
    EXPECT_EQ(cov.covering(1), std::vector<int>{1});
    EXPECT_TRUE(cov.covering(2).empty());
    EXPECT_EQ(cov.num_uncovered_devices(), 1);
}

TEST(CoverageIndex, OverlappingCenters) {
    const std::vector<Vec2> centers{{0.0, 0.0}, {10.0, 0.0}};
    const std::vector<Vec2> devices{{5.0, 0.0}};
    const CoverageIndex cov(centers, devices, 8.0);
    EXPECT_EQ(cov.covered(0), std::vector<int>{0});
    EXPECT_EQ(cov.covered(1), std::vector<int>{0});
    EXPECT_EQ(cov.covering(0), (std::vector<int>{0, 1}));
    EXPECT_EQ(cov.num_uncovered_devices(), 0);
}

TEST(CoverageIndex, BoundaryIsInclusive) {
    const std::vector<Vec2> centers{{0.0, 0.0}};
    const std::vector<Vec2> devices{{50.0, 0.0}};
    const CoverageIndex cov(centers, devices, 50.0);
    EXPECT_EQ(cov.covered(0), std::vector<int>{0});
}

TEST(CoverageIndex, EmptyDevices) {
    const std::vector<Vec2> centers{{0.0, 0.0}};
    const CoverageIndex cov(centers, std::vector<Vec2>{}, 50.0);
    EXPECT_TRUE(cov.covered(0).empty());
    EXPECT_EQ(cov.num_uncovered_devices(), 0);
}

TEST(CoverageIndex, EmptyCenters) {
    const std::vector<Vec2> devices{{1.0, 1.0}};
    const CoverageIndex cov(std::vector<Vec2>{}, devices, 50.0);
    EXPECT_EQ(cov.num_devices(), 1u);
    EXPECT_EQ(cov.num_uncovered_devices(), 1);
}

TEST(CoverageIndex, RejectsNegativeRadius) {
    const std::vector<Vec2> pts{{0.0, 0.0}};
    EXPECT_THROW(CoverageIndex(pts, pts, -1.0), std::invalid_argument);
}

TEST(CoverageIndex, MatchesBruteForceOnRandomLayouts) {
    util::Rng rng(2024);
    for (int trial = 0; trial < 5; ++trial) {
        std::vector<Vec2> centers;
        std::vector<Vec2> devices;
        for (int i = 0; i < 60; ++i) {
            centers.push_back(
                {rng.uniform(0.0, 400.0), rng.uniform(0.0, 400.0)});
        }
        for (int i = 0; i < 80; ++i) {
            devices.push_back(
                {rng.uniform(0.0, 400.0), rng.uniform(0.0, 400.0)});
        }
        const double r = rng.uniform(10.0, 80.0);
        const CoverageIndex cov(centers, devices, r);
        for (std::size_t c = 0; c < centers.size(); ++c) {
            std::vector<int> want;
            for (std::size_t d = 0; d < devices.size(); ++d) {
                if (distance(centers[c], devices[d]) <= r) {
                    want.push_back(static_cast<int>(d));
                }
            }
            EXPECT_EQ(cov.covered(static_cast<int>(c)), want)
                << "trial " << trial << " center " << c;
        }
        // covering() must be the exact transpose of covered().
        for (std::size_t d = 0; d < devices.size(); ++d) {
            for (int c : cov.covering(static_cast<int>(d))) {
                const auto& lst = cov.covered(c);
                EXPECT_TRUE(std::find(lst.begin(), lst.end(),
                                      static_cast<int>(d)) != lst.end());
            }
        }
    }
}

TEST(CoverageIndex, CoveringListsSorted) {
    util::Rng rng(5);
    std::vector<Vec2> centers;
    std::vector<Vec2> devices;
    for (int i = 0; i < 50; ++i) {
        centers.push_back({rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)});
        devices.push_back({rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)});
    }
    const CoverageIndex cov(centers, devices, 30.0);
    for (std::size_t d = 0; d < devices.size(); ++d) {
        const auto& lst = cov.covering(static_cast<int>(d));
        EXPECT_TRUE(std::is_sorted(lst.begin(), lst.end()));
    }
}

}  // namespace
}  // namespace uavdc::geom
