#include "uavdc/workload/csv_import.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "uavdc/workload/presets.hpp"

namespace uavdc::workload {
namespace {

class CsvImportTest : public ::testing::Test {
  protected:
    std::string path_ = ::testing::TempDir() + "/uavdc_devices.csv";
    void write(const std::string& content) {
        std::ofstream out(path_);
        out << content;
    }
    void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(CsvImportTest, LoadsPlainRows) {
    write("10.0,20.0,300\n30.5,40.5,150.5\n");
    const auto inst = load_devices_csv(path_, paper_uav());
    ASSERT_EQ(inst.devices.size(), 2u);
    EXPECT_EQ(inst.devices[0].pos, geom::Vec2(10.0, 20.0));
    EXPECT_DOUBLE_EQ(inst.devices[1].data_mb, 150.5);
    EXPECT_EQ(inst.devices[0].id, 0);
    EXPECT_EQ(inst.devices[1].id, 1);
}

TEST_F(CsvImportTest, SkipsHeaderCommentsBlanks) {
    write("x,y,data_mb\n# survey batch 7\n\n10,10,100\n\n20,20,200\n");
    const auto inst = load_devices_csv(path_, paper_uav());
    EXPECT_EQ(inst.devices.size(), 2u);
}

TEST_F(CsvImportTest, RegionIsInflatedBoundingBox) {
    write("100,100,50\n300,200,50\n");
    const auto inst = load_devices_csv(path_, paper_uav(), 25.0);
    EXPECT_DOUBLE_EQ(inst.region.lo.x, 75.0);
    EXPECT_DOUBLE_EQ(inst.region.lo.y, 75.0);
    EXPECT_DOUBLE_EQ(inst.region.hi.x, 325.0);
    EXPECT_DOUBLE_EQ(inst.region.hi.y, 225.0);
    EXPECT_EQ(inst.depot, inst.region.lo);
    inst.validate();
}

TEST_F(CsvImportTest, BadRowReportsLineNumber) {
    write("10,10,100\nnot,a,row\n");
    try {
        (void)load_devices_csv(path_, paper_uav());
        FAIL() << "expected throw";
    } catch (const std::runtime_error& ex) {
        EXPECT_NE(std::string(ex.what()).find("line 2"), std::string::npos);
    }
}

TEST_F(CsvImportTest, NegativeVolumeRejected) {
    write("10,10,-5\n");
    EXPECT_THROW((void)load_devices_csv(path_, paper_uav()),
                 std::runtime_error);
}

TEST_F(CsvImportTest, EmptyFileRejected) {
    write("# nothing here\n");
    EXPECT_THROW((void)load_devices_csv(path_, paper_uav()),
                 std::runtime_error);
}

TEST_F(CsvImportTest, MissingFileRejected) {
    EXPECT_THROW((void)load_devices_csv("/no/such/file.csv", paper_uav()),
                 std::runtime_error);
}

TEST_F(CsvImportTest, RoundTripThroughSave) {
    write("1.5,2.5,10\n3.5,4.5,20\n");
    const auto inst = load_devices_csv(path_, paper_uav());
    const std::string out = ::testing::TempDir() + "/uavdc_rt.csv";
    save_devices_csv(out, inst);
    const auto back = load_devices_csv(out, paper_uav());
    ASSERT_EQ(back.devices.size(), inst.devices.size());
    for (std::size_t i = 0; i < inst.devices.size(); ++i) {
        EXPECT_EQ(back.devices[i].pos, inst.devices[i].pos);
        EXPECT_DOUBLE_EQ(back.devices[i].data_mb, inst.devices[i].data_mb);
    }
    std::remove(out.c_str());
}

TEST(HaltonDeployment, EvenAndInRegion) {
    GeneratorConfig cfg = paper_scaled(0.3);
    cfg.deployment = Deployment::kHalton;
    const auto inst = generate(cfg, 3);
    EXPECT_EQ(to_string(cfg.deployment), "halton");
    for (const auto& d : inst.devices) {
        EXPECT_TRUE(inst.region.contains(d.pos));
    }
    // Low discrepancy: split the region into 4 quadrants; each holds
    // roughly a quarter of the devices (much tighter than iid uniform).
    int quadrants[4] = {0, 0, 0, 0};
    for (const auto& d : inst.devices) {
        const int qx = d.pos.x < cfg.region_w / 2 ? 0 : 1;
        const int qy = d.pos.y < cfg.region_h / 2 ? 0 : 1;
        ++quadrants[qy * 2 + qx];
    }
    const double expect = static_cast<double>(inst.devices.size()) / 4.0;
    for (int q : quadrants) {
        EXPECT_NEAR(q, expect, 0.15 * expect + 2.0);
    }
}

TEST(HaltonDeployment, DeterministicPositionsIgnoreSeedForLayout) {
    GeneratorConfig cfg = paper_scaled(0.2);
    cfg.deployment = Deployment::kHalton;
    const auto a = generate(cfg, 1);
    const auto b = generate(cfg, 2);
    // Positions are the Halton sequence (seed-independent); volumes differ.
    for (std::size_t i = 0; i < a.devices.size(); ++i) {
        EXPECT_EQ(a.devices[i].pos, b.devices[i].pos);
    }
}

}  // namespace
}  // namespace uavdc::workload
