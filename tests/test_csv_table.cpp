#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "uavdc/util/csv.hpp"
#include "uavdc/util/table.hpp"

namespace uavdc::util {
namespace {

std::string read_file(const std::string& path) {
    std::ifstream in(path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

class CsvTest : public ::testing::Test {
  protected:
    std::string path_ = ::testing::TempDir() + "/uavdc_csv_test.csv";
    void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(CsvTest, WritesRows) {
    {
        CsvWriter w(path_);
        w.row({"a", "b", "c"});
        w.row_of(1, 2.5, "x");
        w.flush();
    }
    EXPECT_EQ(read_file(path_), "a,b,c\n1,2.5,x\n");
}

TEST_F(CsvTest, EscapesSpecialCharacters) {
    {
        CsvWriter w(path_);
        w.row({"plain", "with,comma", "with\"quote", "multi\nline"});
        w.flush();
    }
    EXPECT_EQ(read_file(path_),
              "plain,\"with,comma\",\"with\"\"quote\",\"multi\nline\"\n");
}

TEST(CsvEscape, NoQuoteWhenClean) {
    EXPECT_EQ(CsvWriter::escape("hello"), "hello");
    EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
}

TEST(CsvWriterErrors, ThrowsOnBadPath) {
    EXPECT_THROW(CsvWriter("/nonexistent-dir-xyz/file.csv"),
                 std::runtime_error);
}

TEST(Table, RejectsEmptyHeaders) {
    EXPECT_THROW(Table(std::vector<std::string>{}), std::invalid_argument);
}

TEST(Table, RejectsMismatchedRow) {
    Table t({"a", "b"});
    EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, RendersAligned) {
    Table t({"name", "val"});
    t.add_row({"x", "1"});
    t.add_row({"longer", "22"});
    const std::string s = t.to_string();
    EXPECT_NE(s.find("name    val"), std::string::npos);
    EXPECT_NE(s.find("longer  22"), std::string::npos);
    EXPECT_NE(s.find("-----"), std::string::npos);
}

TEST(Table, MixedRowFormatting) {
    Table t({"i", "d", "s"});
    t.add_row_of(7, 3.14159, "str");
    const std::string s = t.to_string();
    EXPECT_NE(s.find("7"), std::string::npos);
    EXPECT_NE(s.find("3.142"), std::string::npos);
    EXPECT_NE(s.find("str"), std::string::npos);
    EXPECT_EQ(t.num_rows(), 1u);
    EXPECT_EQ(t.num_cols(), 3u);
}

TEST(Table, FmtTrimsTrailingZeros) {
    EXPECT_EQ(Table::fmt(1.5, 3), "1.5");
    EXPECT_EQ(Table::fmt(2.0, 3), "2.0");
    EXPECT_EQ(Table::fmt(1.2345, 2), "1.23");
    EXPECT_EQ(Table::fmt(-0.5, 1), "-0.5");
}

TEST(Table, IndentApplied) {
    Table t({"h"});
    t.add_row({"v"});
    const std::string s = t.to_string(4);
    EXPECT_EQ(s.rfind("    h", 0), 0u);
}

}  // namespace
}  // namespace uavdc::util
