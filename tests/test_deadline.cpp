#include <gtest/gtest.h>

#include "test_util.hpp"
#include "uavdc/core/algorithm2.hpp"
#include "uavdc/core/algorithm3.hpp"
#include "uavdc/core/evaluate.hpp"

namespace uavdc::core {
namespace {

using testing::small_instance;

double tour_time(const model::Instance& inst, const model::FlightPlan& p) {
    return p.energy(inst.depot, inst.uav).total_s();
}

TEST(Deadline, Algorithm2RespectsDeadline) {
    const auto inst = small_instance(30, 300.0, 31, 1.0e5);
    for (double deadline : {60.0, 120.0, 240.0}) {
        Algorithm2Config cfg;
        cfg.candidates.delta_m = 20.0;
        cfg.max_tour_time_s = deadline;
        const auto res = GreedyCoveragePlanner(cfg).plan(inst);
        EXPECT_LE(tour_time(inst, res.plan), deadline + 1e-6)
            << "deadline " << deadline;
        EXPECT_TRUE(res.plan.feasible(inst.depot, inst.uav, 1e-6));
    }
}

TEST(Deadline, Algorithm3RespectsDeadline) {
    const auto inst = small_instance(30, 300.0, 32, 1.0e5);
    for (double deadline : {60.0, 180.0}) {
        Algorithm3Config cfg;
        cfg.candidates.delta_m = 20.0;
        cfg.k = 2;
        cfg.max_tour_time_s = deadline;
        const auto res = PartialCollectionPlanner(cfg).plan(inst);
        EXPECT_LE(tour_time(inst, res.plan), deadline + 1e-6);
    }
}

TEST(Deadline, TighterDeadlineCollectsLess) {
    const auto inst = small_instance(35, 320.0, 33, 2.0e5);
    auto collect = [&](double deadline) {
        Algorithm2Config cfg;
        cfg.candidates.delta_m = 20.0;
        cfg.max_tour_time_s = deadline;
        const auto res = GreedyCoveragePlanner(cfg).plan(inst);
        return evaluate_plan(inst, res.plan).collected_mb;
    };
    const double tight = collect(60.0);
    const double loose = collect(600.0);
    EXPECT_LE(tight, loose + 1e-6);
    EXPECT_GT(loose, 0.0);
}

TEST(Deadline, ZeroMeansUnconstrained) {
    const auto inst = small_instance(25, 280.0, 34, 8.0e4);
    Algorithm2Config with, without;
    with.candidates.delta_m = without.candidates.delta_m = 20.0;
    with.max_tour_time_s = 1e9;  // effectively no deadline
    without.max_tour_time_s = 0.0;
    const auto a = GreedyCoveragePlanner(with).plan(inst);
    const auto b = GreedyCoveragePlanner(without).plan(inst);
    EXPECT_NEAR(evaluate_plan(inst, a.plan).collected_mb,
                evaluate_plan(inst, b.plan).collected_mb, 1e-6);
}

TEST(Deadline, ImpossibleDeadlineYieldsEmptyPlan) {
    const auto inst = small_instance(20, 300.0, 35, 1.0e5);
    Algorithm2Config cfg;
    cfg.candidates.delta_m = 25.0;
    cfg.max_tour_time_s = 0.5;  // can't even reach the nearest device
    const auto res = GreedyCoveragePlanner(cfg).plan(inst);
    EXPECT_TRUE(res.plan.empty());
}

}  // namespace
}  // namespace uavdc::core
