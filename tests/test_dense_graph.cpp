#include "uavdc/graph/dense_graph.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "uavdc/util/rng.hpp"

namespace uavdc::graph {
namespace {

TEST(DenseGraph, EmptyAndSingleton) {
    const DenseGraph g0;
    EXPECT_EQ(g0.size(), 0u);
    const DenseGraph g1(1);
    EXPECT_EQ(g1.size(), 1u);
    EXPECT_EQ(g1.weight(0, 0), 0.0);
}

TEST(DenseGraph, SetWeightIsSymmetric) {
    DenseGraph g(3);
    g.set_weight(0, 2, 5.5);
    EXPECT_DOUBLE_EQ(g.weight(0, 2), 5.5);
    EXPECT_DOUBLE_EQ(g.weight(2, 0), 5.5);
    EXPECT_DOUBLE_EQ(g.weight(0, 1), 0.0);
}

TEST(DenseGraph, EuclideanConstruction) {
    const std::vector<geom::Vec2> pts{{0.0, 0.0}, {3.0, 4.0}, {3.0, 0.0}};
    const DenseGraph g = DenseGraph::euclidean(pts);
    EXPECT_DOUBLE_EQ(g.weight(0, 1), 5.0);
    EXPECT_DOUBLE_EQ(g.weight(0, 2), 3.0);
    EXPECT_DOUBLE_EQ(g.weight(1, 2), 4.0);
    EXPECT_DOUBLE_EQ(g.weight(1, 1), 0.0);
}

TEST(DenseGraph, FromWeightsFunctor) {
    const DenseGraph g = DenseGraph::from_weights(
        4, [](std::size_t i, std::size_t j) {
            return static_cast<double>(i + j);
        });
    EXPECT_DOUBLE_EQ(g.weight(1, 3), 4.0);
    EXPECT_DOUBLE_EQ(g.weight(3, 1), 4.0);
    EXPECT_DOUBLE_EQ(g.weight(2, 2), 0.0);  // diagonal forced to zero
}

TEST(DenseGraph, RowView) {
    DenseGraph g(3);
    g.set_weight(1, 0, 2.0);
    g.set_weight(1, 2, 7.0);
    const auto row = g.row(1);
    ASSERT_EQ(row.size(), 3u);
    EXPECT_DOUBLE_EQ(row[0], 2.0);
    EXPECT_DOUBLE_EQ(row[1], 0.0);
    EXPECT_DOUBLE_EQ(row[2], 7.0);
}

TEST(DenseGraph, EuclideanIsMetric) {
    util::Rng rng(17);
    std::vector<geom::Vec2> pts;
    for (int i = 0; i < 25; ++i) {
        pts.push_back({rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)});
    }
    const DenseGraph g = DenseGraph::euclidean(pts);
    EXPECT_LE(g.max_triangle_violation(), 1e-9);
}

TEST(DenseGraph, TriangleViolationDetected) {
    DenseGraph g(3);
    g.set_weight(0, 1, 1.0);
    g.set_weight(1, 2, 1.0);
    g.set_weight(0, 2, 10.0);  // violates: 10 > 1 + 1
    EXPECT_NEAR(g.max_triangle_violation(), 8.0, 1e-12);
}

TEST(DenseGraph, TourLength) {
    const std::vector<geom::Vec2> pts{
        {0.0, 0.0}, {1.0, 0.0}, {1.0, 1.0}, {0.0, 1.0}};
    const DenseGraph g = DenseGraph::euclidean(pts);
    const std::vector<std::size_t> order{0, 1, 2, 3};
    EXPECT_DOUBLE_EQ(g.tour_length(order), 4.0);
    const std::vector<std::size_t> pair{0, 2};
    EXPECT_DOUBLE_EQ(g.tour_length(pair), 2.0 * std::sqrt(2.0));
    const std::vector<std::size_t> single{0};
    EXPECT_DOUBLE_EQ(g.tour_length(single), 0.0);
}

TEST(DenseGraph, PathLength) {
    const std::vector<geom::Vec2> pts{
        {0.0, 0.0}, {1.0, 0.0}, {1.0, 1.0}};
    const DenseGraph g = DenseGraph::euclidean(pts);
    const std::vector<std::size_t> order{0, 1, 2};
    EXPECT_DOUBLE_EQ(g.path_length(order), 2.0);
    EXPECT_DOUBLE_EQ(g.path_length(std::vector<std::size_t>{1}), 0.0);
}

}  // namespace
}  // namespace uavdc::graph
