// Every planner in the registry is deterministic: the same instance and
// configuration must produce bit-identical plans run to run (a requirement
// for reproducible experiments and for the bench harness's caching-free
// parallel sweeps).

#include <gtest/gtest.h>

#include "test_util.hpp"
#include "uavdc/core/registry.hpp"

namespace uavdc::core {
namespace {

class PlannerDeterminism
    : public ::testing::TestWithParam<std::string> {};

TEST_P(PlannerDeterminism, SamePlanTwice) {
    const auto inst = testing::small_instance(35, 320.0, 55);
    PlannerOptions opts;
    opts.delta_m = 20.0;
    opts.grasp_iterations = 4;
    const auto a = make_planner(GetParam(), opts)->plan(inst);
    const auto b = make_planner(GetParam(), opts)->plan(inst);
    ASSERT_EQ(a.plan.stops.size(), b.plan.stops.size());
    for (std::size_t i = 0; i < a.plan.stops.size(); ++i) {
        EXPECT_EQ(a.plan.stops[i].pos, b.plan.stops[i].pos) << i;
        EXPECT_DOUBLE_EQ(a.plan.stops[i].dwell_s, b.plan.stops[i].dwell_s);
    }
    EXPECT_DOUBLE_EQ(a.stats.planned_mb, b.stats.planned_mb);
}

TEST_P(PlannerDeterminism, IndependentOfOtherRuns) {
    // Plan on one instance, then another, then the first again: the first
    // instance's plan must be unchanged (no hidden planner state).
    const auto inst1 = testing::small_instance(30, 300.0, 56);
    const auto inst2 = testing::small_instance(20, 200.0, 57);
    PlannerOptions opts;
    opts.delta_m = 20.0;
    opts.grasp_iterations = 4;
    auto planner = make_planner(GetParam(), opts);
    const auto first = planner->plan(inst1);
    (void)planner->plan(inst2);
    const auto again = planner->plan(inst1);
    ASSERT_EQ(first.plan.stops.size(), again.plan.stops.size());
    for (std::size_t i = 0; i < first.plan.stops.size(); ++i) {
        EXPECT_EQ(first.plan.stops[i].pos, again.plan.stops[i].pos);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllRegistered, PlannerDeterminism,
    ::testing::Values("alg1", "alg2", "alg3", "benchmark", "kmeans",
                      "sweep"),
    [](const ::testing::TestParamInfo<std::string>& info) {
        return info.param;
    });

}  // namespace
}  // namespace uavdc::core
