#include <gtest/gtest.h>

#include "test_util.hpp"
#include "uavdc/core/algorithm2.hpp"
#include "uavdc/sim/simulator.hpp"

namespace uavdc::sim {
namespace {

using testing::manual_instance;
using testing::small_instance;

TEST(EarlyDeparture, SavesPaddedDwell) {
    // Device needs 2 s; planner (deliberately) dwells 10 s. Adaptive
    // execution leaves after 2 s, saving 8 s * 150 W = 1200 J.
    const auto inst = manual_instance({{{30.0, 40.0}, 300.0}});
    model::FlightPlan plan;
    plan.stops.push_back({{30.0, 40.0}, 10.0, -1});
    SimConfig cfg;
    cfg.early_departure = true;
    const auto rep = Simulator(cfg).run(inst, plan);
    EXPECT_TRUE(rep.completed);
    EXPECT_DOUBLE_EQ(rep.collected_mb, 300.0);
    EXPECT_NEAR(rep.hover_s, 2.0, 1e-9);
    EXPECT_NEAR(rep.energy_saved_j, 8.0 * 150.0, 1e-9);
}

TEST(EarlyDeparture, NoSavingWhenDwellIsExact) {
    const auto inst = manual_instance({{{30.0, 40.0}, 300.0}});
    model::FlightPlan plan;
    plan.stops.push_back({{30.0, 40.0}, 2.0, -1});
    SimConfig cfg;
    cfg.early_departure = true;
    const auto rep = Simulator(cfg).run(inst, plan);
    EXPECT_NEAR(rep.energy_saved_j, 0.0, 1e-9);
    EXPECT_DOUBLE_EQ(rep.collected_mb, 300.0);
}

TEST(EarlyDeparture, SkipsStopsWithNothingLeft) {
    // Second overlapping stop has nothing to collect: zero hover there.
    const auto inst = manual_instance({{{50.0, 50.0}, 150.0}});
    model::FlightPlan plan;
    plan.stops.push_back({{50.0, 50.0}, 1.0, -1});
    plan.stops.push_back({{55.0, 50.0}, 1.0, -1});
    SimConfig cfg;
    cfg.early_departure = true;
    const auto rep = Simulator(cfg).run(inst, plan);
    EXPECT_DOUBLE_EQ(rep.collected_mb, 150.0);
    EXPECT_NEAR(rep.hover_s, 1.0, 1e-9);  // only the first stop hovers
    EXPECT_NEAR(rep.energy_saved_j, 150.0, 1e-9);
}

TEST(EarlyDeparture, CollectsSameVolumeAsOpenLoop) {
    // Adaptive execution never loses data relative to the planned dwell.
    for (std::uint64_t seed : {81u, 82u, 83u}) {
        const auto inst = small_instance(30, 300.0, seed);
        core::Algorithm2Config pcfg;
        pcfg.candidates.delta_m = 20.0;
        const auto res = core::GreedyCoveragePlanner(pcfg).plan(inst);
        SimConfig open, adaptive;
        open.record_trace = adaptive.record_trace = false;
        adaptive.early_departure = true;
        const auto a = Simulator(open).run(inst, res.plan);
        const auto b = Simulator(adaptive).run(inst, res.plan);
        EXPECT_NEAR(a.collected_mb, b.collected_mb, 1e-6) << seed;
        EXPECT_LE(b.energy_used_j, a.energy_used_j + 1e-9) << seed;
        EXPECT_GE(b.energy_saved_j, -1e-9) << seed;
        EXPECT_NEAR(a.energy_used_j - b.energy_used_j, b.energy_saved_j,
                    1e-6)
            << seed;
    }
}

TEST(EarlyDeparture, SavedEnergyGrowsWithOverlap) {
    // Dense overlapping plans (Alg 2 with fine grid) leave more redundant
    // dwell on the table than the depot-only trivial plan.
    const auto inst = small_instance(40, 250.0, 84);
    core::Algorithm2Config pcfg;
    pcfg.candidates.delta_m = 10.0;
    const auto res = core::GreedyCoveragePlanner(pcfg).plan(inst);
    SimConfig cfg;
    cfg.record_trace = false;
    cfg.early_departure = true;
    const auto rep = Simulator(cfg).run(inst, res.plan);
    EXPECT_GE(rep.energy_saved_j, 0.0);
    EXPECT_TRUE(rep.completed);
}

TEST(EarlyDeparture, OffByDefault) {
    const auto inst = manual_instance({{{30.0, 40.0}, 300.0}});
    model::FlightPlan plan;
    plan.stops.push_back({{30.0, 40.0}, 10.0, -1});
    const auto rep = Simulator().run(inst, plan);
    EXPECT_NEAR(rep.hover_s, 10.0, 1e-9);
    EXPECT_DOUBLE_EQ(rep.energy_saved_j, 0.0);
}

}  // namespace
}  // namespace uavdc::sim
