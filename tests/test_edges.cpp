// Edge-case coverage across modules: inputs at the boundaries of each
// API's contract.

#include <gtest/gtest.h>

#include <sstream>

#include "test_util.hpp"
#include "uavdc/core/algorithm2.hpp"
#include "uavdc/core/evaluate.hpp"
#include "uavdc/io/json.hpp"
#include "uavdc/io/svg.hpp"
#include "uavdc/orienteering/greedy.hpp"
#include "uavdc/util/table.hpp"

namespace uavdc {
namespace {

TEST(Edges, TableStreamPrint) {
    util::Table t({"a"});
    t.add_row({"x"});
    std::ostringstream os;
    t.print(os, 2);
    EXPECT_EQ(os.str(), t.to_string(2));
}

TEST(Edges, JsonBadUnicodeEscape) {
    EXPECT_THROW((void)io::Json::parse(R"("\uZZZZ")"), std::runtime_error);
    EXPECT_THROW((void)io::Json::parse("\"ctrl\x01char\""),
                 std::runtime_error);
    EXPECT_THROW((void)io::Json::parse(R"("\q")"), std::runtime_error);
}

TEST(Edges, JsonAsciiUnicodeEscape) {
    EXPECT_EQ(io::Json::parse(R"("A")").as_string(), "A");
    EXPECT_EQ(io::Json::parse(R"("é")").as_string(), "\xC3\xA9");
}

TEST(Edges, JsonDeepNesting) {
    std::string doc;
    for (int i = 0; i < 60; ++i) doc += "[";
    doc += "1";
    for (int i = 0; i < 60; ++i) doc += "]";
    const auto v = io::Json::parse(doc);
    const io::Json* cur = &v;
    for (int i = 0; i < 60; ++i) cur = &cur->as_array()[0];
    EXPECT_DOUBLE_EQ(cur->as_number(), 1.0);
}

TEST(Edges, UavZeroSpeedTravelTime) {
    model::UavConfig uav;
    uav.speed_mps = 0.0;
    EXPECT_DOUBLE_EQ(uav.travel_time(100.0), 0.0);
    EXPECT_FALSE(uav.valid());
}

TEST(Edges, GreedyOrienteeringAllZeroPrizes) {
    orienteering::Problem p;
    std::vector<geom::Vec2> pts{{0.0, 0.0}, {10.0, 0.0}, {20.0, 0.0}};
    p.graph = graph::DenseGraph::euclidean(pts);
    p.prizes = {0.0, 0.0, 0.0};
    p.depot = 0;
    p.budget = 100.0;
    const auto s = orienteering::solve_greedy(p);
    EXPECT_EQ(s.tour, std::vector<std::size_t>{0});
    EXPECT_DOUBLE_EQ(s.prize, 0.0);
}

TEST(Edges, SvgOptionsVariants) {
    const auto inst = testing::small_instance(8, 150.0, 94);
    core::Algorithm2Config cfg;
    cfg.candidates.delta_m = 30.0;
    const auto res = core::GreedyCoveragePlanner(cfg).plan(inst);
    io::SvgOptions opts;
    opts.draw_coverage = false;
    opts.draw_device_labels = true;
    opts.scale_devices_by_data = false;
    const std::string svg = io::render_svg(inst, &res.plan, opts);
    EXPECT_EQ(svg.find("fill-opacity=\"0.10\""), std::string::npos)
        << "coverage disks must be off";
    EXPECT_NE(svg.find(">0</text>"), std::string::npos)
        << "device id labels must be on";
}

TEST(Edges, EvaluateZeroDwellStopCollectsNothing) {
    const auto inst = testing::manual_instance({{{50.0, 50.0}, 100.0}});
    model::FlightPlan plan;
    plan.stops.push_back({{50.0, 50.0}, 0.0, -1});
    const auto ev = core::evaluate_plan(inst, plan);
    EXPECT_DOUBLE_EQ(ev.collected_mb, 0.0);
    EXPECT_GT(ev.energy_j, 0.0);  // travel still costs
}

TEST(Edges, RatioRuleNames) {
    EXPECT_EQ(core::to_string(core::RatioRule::kPaper), "eq13");
    EXPECT_EQ(core::to_string(core::RatioRule::kVolumeOnly), "volume");
    EXPECT_EQ(core::to_string(core::RatioRule::kPerHover), "per-hover");
}

TEST(Edges, RatioRulesAllFeasibleAndComparable) {
    const auto inst = testing::small_instance(30, 300.0, 95);
    for (auto rule : {core::RatioRule::kPaper, core::RatioRule::kVolumeOnly,
                      core::RatioRule::kPerHover}) {
        core::Algorithm2Config cfg;
        cfg.candidates.delta_m = 20.0;
        cfg.ratio_rule = rule;
        const auto res = core::GreedyCoveragePlanner(cfg).plan(inst);
        EXPECT_TRUE(res.plan.feasible(inst.depot, inst.uav, 1e-6))
            << core::to_string(rule);
        EXPECT_GT(core::evaluate_plan(inst, res.plan).collected_mb, 0.0)
            << core::to_string(rule);
    }
}

TEST(Edges, PaperRuleCompetitiveUnderScarcity) {
    // Eq. 13's energy-awareness keeps it within a few percent of the best
    // alternative on any draw (which rule wins a given instance is noise;
    // the bench sweep shows eq13 ahead at the scarcest points on average).
    double paper = 0.0;
    double volume = 0.0;
    for (std::uint64_t seed : {96u, 97u, 98u, 99u}) {
        auto inst = testing::small_instance(35, 320.0, seed);
        inst.uav.energy_j = 2.5e4;
        core::Algorithm2Config cfg;
        cfg.candidates.delta_m = 20.0;
        cfg.ratio_rule = core::RatioRule::kPaper;
        paper += core::evaluate_plan(
                     inst, core::GreedyCoveragePlanner(cfg).plan(inst).plan)
                     .collected_mb;
        cfg.ratio_rule = core::RatioRule::kVolumeOnly;
        volume += core::evaluate_plan(
                      inst,
                      core::GreedyCoveragePlanner(cfg).plan(inst).plan)
                      .collected_mb;
    }
    EXPECT_GT(paper, 0.9 * volume);
}

}  // namespace
}  // namespace uavdc
