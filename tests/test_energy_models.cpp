// Energy-model property suite: the per-metre (paper-literal) and
// per-second readings of eta_t, FlightPlan accounting linearity, and the
// evaluator/metrics/simulator agreement on randomly *handcrafted* plans
// (planner outputs are well-formed by construction; these are not).

#include <gtest/gtest.h>

#include "test_util.hpp"
#include "uavdc/core/evaluate.hpp"
#include "uavdc/core/metrics.hpp"
#include "uavdc/sim/simulator.hpp"
#include "uavdc/util/rng.hpp"

namespace uavdc {
namespace {

model::FlightPlan random_plan(const model::Instance& inst, int stops,
                              std::uint64_t seed) {
    util::Rng rng(seed);
    model::FlightPlan plan;
    for (int i = 0; i < stops; ++i) {
        plan.stops.push_back(
            {{rng.uniform(inst.region.lo.x, inst.region.hi.x),
              rng.uniform(inst.region.lo.y, inst.region.hi.y)},
             rng.uniform(0.0, 8.0),
             -1});
    }
    return plan;
}

TEST(EnergyModels, PerMeterAndPerSecondRelateBySpeed) {
    // At speed v, per-metre rate r charges what per-second rate r*v does.
    model::UavConfig per_meter;
    per_meter.travel_energy_model = model::TravelEnergyModel::kPerMeter;
    per_meter.travel_rate = 100.0;
    model::UavConfig per_second = per_meter;
    per_second.travel_energy_model = model::TravelEnergyModel::kPerSecond;
    per_second.travel_rate = 100.0 * per_meter.speed_mps;
    for (double dist : {0.0, 1.0, 123.4, 9999.0}) {
        EXPECT_NEAR(per_meter.travel_energy(dist),
                    per_second.travel_energy(dist), 1e-9);
    }
    EXPECT_NEAR(per_meter.travel_power_w(), per_second.travel_power_w(),
                1e-9);
}

TEST(EnergyModels, PlanEnergyIsAdditiveInDwell) {
    const auto inst = testing::small_instance(10, 200.0, 121);
    auto plan = random_plan(inst, 5, 1);
    const double base = plan.total_energy(inst.depot, inst.uav);
    plan.stops[2].dwell_s += 7.0;
    const double bumped = plan.total_energy(inst.depot, inst.uav);
    EXPECT_NEAR(bumped - base, 7.0 * inst.uav.hover_power_w, 1e-9);
}

TEST(EnergyModels, TravelEnergyScalesWithTourLength) {
    const auto inst = testing::small_instance(10, 200.0, 122);
    const auto plan = random_plan(inst, 6, 2);
    const auto e = plan.energy(inst.depot, inst.uav);
    EXPECT_NEAR(e.travel_j, inst.uav.travel_energy(e.travel_m), 1e-9);
    EXPECT_NEAR(e.travel_s, inst.uav.travel_time(e.travel_m), 1e-9);
}

class HandcraftedPlanSweep : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(HandcraftedPlanSweep, EvaluatorMetricsSimulatorAgree) {
    auto inst = testing::small_instance(30, 300.0, GetParam());
    inst.uav.energy_j = 1.0e9;  // plans here are arbitrary, keep feasible
    const auto plan = random_plan(inst, 12, GetParam() * 13 + 1);
    const auto ev = core::evaluate_plan(inst, plan);
    const auto met = core::compute_metrics(inst, plan);
    sim::SimConfig cfg;
    cfg.record_trace = false;
    const auto rep = sim::Simulator(cfg).run(inst, plan);
    EXPECT_TRUE(rep.completed);
    EXPECT_NEAR(ev.collected_mb, rep.collected_mb, 1e-6);
    EXPECT_NEAR(ev.collected_mb, met.collected_mb, 1e-6);
    EXPECT_NEAR(ev.energy_j, rep.energy_used_j, 1e-6);
    EXPECT_EQ(ev.devices_drained, rep.devices_drained);
    for (std::size_t d = 0; d < ev.per_device_mb.size(); ++d) {
        EXPECT_NEAR(ev.per_device_mb[d], rep.per_device_mb[d], 1e-6);
    }
}

TEST_P(HandcraftedPlanSweep, CollectionMonotoneInDwell) {
    auto inst = testing::small_instance(25, 280.0, GetParam() + 50);
    inst.uav.energy_j = 1.0e9;
    auto plan = random_plan(inst, 8, GetParam() * 7 + 3);
    const double before =
        core::evaluate_plan(inst, plan).collected_mb;
    for (auto& s : plan.stops) s.dwell_s *= 2.0;
    const double after = core::evaluate_plan(inst, plan).collected_mb;
    EXPECT_GE(after, before - 1e-9);
}

TEST_P(HandcraftedPlanSweep, TruncationMonotoneInBattery) {
    // More battery never yields less data for the same plan.
    auto inst = testing::small_instance(25, 280.0, GetParam() + 80);
    const auto plan = random_plan(inst, 10, GetParam() * 5 + 7);
    sim::SimConfig cfg;
    cfg.record_trace = false;
    double prev = -1.0;
    for (double e : {5.0e3, 2.0e4, 8.0e4, 1.0e9}) {
        auto varied = inst;
        varied.uav.energy_j = e;
        const auto rep = sim::Simulator(cfg).run(varied, plan);
        EXPECT_GE(rep.collected_mb, prev - 1e-9) << "E=" << e;
        EXPECT_LE(rep.energy_used_j, e + 1e-6);
        prev = rep.collected_mb;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HandcraftedPlanSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

}  // namespace
}  // namespace uavdc
