#include "uavdc/graph/euler.hpp"

#include <gtest/gtest.h>

#include "uavdc/util/check.hpp"

#include <map>
#include <vector>

namespace uavdc::graph {
namespace {

/// Verify `walk` starting at `start` uses every edge exactly once.
void check_circuit(const std::vector<std::size_t>& walk,
                   const std::vector<Edge>& edges, std::size_t start) {
    ASSERT_FALSE(walk.empty());
    EXPECT_EQ(walk.front(), start);
    // Multiset of undirected edges.
    std::map<std::pair<std::size_t, std::size_t>, int> remaining;
    for (const auto& e : edges) {
        ++remaining[{std::min(e.u, e.v), std::max(e.u, e.v)}];
    }
    auto use = [&](std::size_t a, std::size_t b) {
        auto it = remaining.find({std::min(a, b), std::max(a, b)});
        ASSERT_NE(it, remaining.end()) << "edge not in graph";
        ASSERT_GT(it->second, 0) << "edge reused";
        --it->second;
    };
    for (std::size_t i = 0; i + 1 < walk.size(); ++i) {
        use(walk[i], walk[i + 1]);
    }
    use(walk.back(), walk.front());  // implicit closing edge
    for (const auto& [e, cnt] : remaining) {
        EXPECT_EQ(cnt, 0) << "edge unused";
    }
}

TEST(Euler, TriangleCircuit) {
    const std::vector<Edge> edges{{0, 1, 1.0}, {1, 2, 1.0}, {0, 2, 1.0}};
    const auto walk = eulerian_circuit(3, edges, 0);
    check_circuit(walk, edges, 0);
    EXPECT_EQ(walk.size(), 3u);
}

TEST(Euler, MultiEdgePair) {
    // Two parallel edges between 0 and 1: circuit 0 -> 1 -> (0).
    const std::vector<Edge> edges{{0, 1, 1.0}, {0, 1, 2.0}};
    const auto walk = eulerian_circuit(2, edges, 0);
    check_circuit(walk, edges, 0);
}

TEST(Euler, FigureEight) {
    // Two triangles sharing node 0 — all degrees even.
    const std::vector<Edge> edges{{0, 1, 1.0}, {1, 2, 1.0}, {2, 0, 1.0},
                                  {0, 3, 1.0}, {3, 4, 1.0}, {4, 0, 1.0}};
    const auto walk = eulerian_circuit(5, edges, 0);
    check_circuit(walk, edges, 0);
    EXPECT_EQ(walk.size(), 6u);
}

TEST(Euler, StartFromDifferentNode) {
    const std::vector<Edge> edges{{0, 1, 1.0}, {1, 2, 1.0}, {0, 2, 1.0}};
    const auto walk = eulerian_circuit(3, edges, 2);
    check_circuit(walk, edges, 2);
}

TEST(Euler, OddDegreeThrows) {
    const std::vector<Edge> edges{{0, 1, 1.0}, {1, 2, 1.0}};
    EXPECT_THROW(eulerian_circuit(3, edges, 0), util::ContractViolation);
}

TEST(Euler, DisconnectedThrows) {
    // Two disjoint 2-cycles; start can't reach the second.
    const std::vector<Edge> edges{{0, 1, 1.0}, {0, 1, 1.0},
                                  {2, 3, 1.0}, {2, 3, 1.0}};
    EXPECT_THROW(eulerian_circuit(4, edges, 0), util::ContractViolation);
}

TEST(Euler, IsolatedStartThrows) {
    const std::vector<Edge> edges{{1, 2, 1.0}, {1, 2, 1.0}};
    EXPECT_THROW(eulerian_circuit(3, edges, 0), util::ContractViolation);
}

TEST(Euler, BadStartThrows) {
    EXPECT_THROW(eulerian_circuit(2, {}, 5), util::ContractViolation);
}

TEST(Euler, NoEdgesSingleNode) {
    const auto walk = eulerian_circuit(1, {}, 0);
    EXPECT_EQ(walk, std::vector<std::size_t>{0});
}

TEST(Shortcut, KeepsFirstOccurrences) {
    const std::vector<std::size_t> walk{0, 1, 2, 0, 3, 1, 4};
    EXPECT_EQ(shortcut_walk(walk),
              (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(Shortcut, EmptyWalk) {
    EXPECT_TRUE(shortcut_walk({}).empty());
}

TEST(Shortcut, AlreadySimple) {
    const std::vector<std::size_t> walk{3, 1, 2};
    EXPECT_EQ(shortcut_walk(walk), walk);
}

}  // namespace
}  // namespace uavdc::graph
