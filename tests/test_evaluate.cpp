#include "uavdc/core/evaluate.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace uavdc::core {
namespace {

using testing::manual_instance;

TEST(Evaluate, EmptyPlanCollectsNothing) {
    const auto inst = manual_instance({{{50.0, 50.0}, 300.0}});
    const model::FlightPlan plan;
    const auto ev = evaluate_plan(inst, plan);
    EXPECT_DOUBLE_EQ(ev.collected_mb, 0.0);
    EXPECT_DOUBLE_EQ(ev.energy_j, 0.0);
    EXPECT_TRUE(ev.energy_feasible);
    EXPECT_EQ(ev.devices_touched, 0);
}

TEST(Evaluate, FullCollectionAtOneStop) {
    // Device 300 MB at 150 MB/s needs 2 s dwell.
    const auto inst = manual_instance({{{50.0, 50.0}, 300.0}});
    model::FlightPlan plan;
    plan.stops.push_back({{50.0, 50.0}, 2.0, -1});
    const auto ev = evaluate_plan(inst, plan);
    EXPECT_DOUBLE_EQ(ev.collected_mb, 300.0);
    EXPECT_EQ(ev.devices_touched, 1);
    EXPECT_EQ(ev.devices_drained, 1);
}

TEST(Evaluate, PartialCollectionShortDwell) {
    const auto inst = manual_instance({{{50.0, 50.0}, 300.0}});
    model::FlightPlan plan;
    plan.stops.push_back({{50.0, 50.0}, 1.0, -1});  // 150 MB of 300
    const auto ev = evaluate_plan(inst, plan);
    EXPECT_DOUBLE_EQ(ev.collected_mb, 150.0);
    EXPECT_EQ(ev.devices_touched, 1);
    EXPECT_EQ(ev.devices_drained, 0);
}

TEST(Evaluate, DeviceOutsideCoverageIgnored) {
    const auto inst = manual_instance({{{150.0, 150.0}, 300.0}});
    model::FlightPlan plan;
    plan.stops.push_back({{50.0, 50.0}, 10.0, -1});  // > 50 m away
    const auto ev = evaluate_plan(inst, plan);
    EXPECT_DOUBLE_EQ(ev.collected_mb, 0.0);
}

TEST(Evaluate, ConcurrentUploadsAtOneStop) {
    // Two devices in range; both upload simultaneously (OFDMA).
    const auto inst = manual_instance(
        {{{40.0, 50.0}, 150.0}, {{60.0, 50.0}, 300.0}});
    model::FlightPlan plan;
    plan.stops.push_back({{50.0, 50.0}, 2.0, -1});
    const auto ev = evaluate_plan(inst, plan);
    EXPECT_DOUBLE_EQ(ev.collected_mb, 450.0);
    EXPECT_EQ(ev.devices_drained, 2);
}

TEST(Evaluate, ResidualCarriedAcrossStops) {
    // One device covered by two stops, each dwell covers half the data.
    const auto inst = manual_instance({{{50.0, 50.0}, 300.0}});
    model::FlightPlan plan;
    plan.stops.push_back({{30.0, 50.0}, 1.0, -1});
    plan.stops.push_back({{70.0, 50.0}, 1.0, -1});
    const auto ev = evaluate_plan(inst, plan);
    EXPECT_DOUBLE_EQ(ev.collected_mb, 300.0);
    EXPECT_EQ(ev.devices_drained, 1);
    EXPECT_DOUBLE_EQ(ev.per_device_mb[0], 300.0);
}

TEST(Evaluate, NoDoubleCountingWithOverlap) {
    // Device fully drained at the first stop contributes nothing at the
    // second overlapping stop.
    const auto inst = manual_instance({{{50.0, 50.0}, 150.0}});
    model::FlightPlan plan;
    plan.stops.push_back({{50.0, 50.0}, 5.0, -1});
    plan.stops.push_back({{55.0, 50.0}, 5.0, -1});
    const auto ev = evaluate_plan(inst, plan);
    EXPECT_DOUBLE_EQ(ev.collected_mb, 150.0);
}

TEST(Evaluate, EnergyAccountingMatchesPlan) {
    const auto inst = manual_instance({{{30.0, 40.0}, 300.0}});
    model::FlightPlan plan;
    plan.stops.push_back({{30.0, 40.0}, 2.0, -1});
    const auto ev = evaluate_plan(inst, plan);
    EXPECT_DOUBLE_EQ(ev.energy_j, plan.total_energy(inst.depot, inst.uav));
    EXPECT_DOUBLE_EQ(ev.tour_time_s,
                     plan.energy(inst.depot, inst.uav).total_s());
}

TEST(Evaluate, InfeasibleFlagged) {
    auto inst = manual_instance({{{30.0, 40.0}, 300.0}});
    inst.uav.energy_j = 100.0;  // plan needs 1300 J
    model::FlightPlan plan;
    plan.stops.push_back({{30.0, 40.0}, 2.0, -1});
    const auto ev = evaluate_plan(inst, plan);
    EXPECT_FALSE(ev.energy_feasible);
}

TEST(Evaluate, BoundaryDeviceCollected) {
    // Device exactly at R0 = 50 m from the stop is covered (closed disk).
    const auto inst = manual_instance({{{100.0, 50.0}, 150.0}});
    model::FlightPlan plan;
    plan.stops.push_back({{50.0, 50.0}, 1.0, -1});
    const auto ev = evaluate_plan(inst, plan);
    EXPECT_DOUBLE_EQ(ev.collected_mb, 150.0);
}

TEST(Evaluate, ZeroDataDeviceNotTouched) {
    const auto inst = manual_instance({{{50.0, 50.0}, 0.0}});
    model::FlightPlan plan;
    plan.stops.push_back({{50.0, 50.0}, 1.0, -1});
    const auto ev = evaluate_plan(inst, plan);
    EXPECT_EQ(ev.devices_touched, 0);
    EXPECT_DOUBLE_EQ(ev.collected_mb, 0.0);
}

}  // namespace
}  // namespace uavdc::core
