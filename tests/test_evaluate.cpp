#include "uavdc/core/evaluate.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace uavdc::core {
namespace {

using testing::manual_instance;

TEST(Evaluate, EmptyPlanCollectsNothing) {
    const auto inst = manual_instance({{{50.0, 50.0}, 300.0}});
    const model::FlightPlan plan;
    const auto ev = evaluate_plan(inst, plan);
    EXPECT_DOUBLE_EQ(ev.collected_mb, 0.0);
    EXPECT_DOUBLE_EQ(ev.energy_j, 0.0);
    EXPECT_TRUE(ev.energy_feasible);
    EXPECT_EQ(ev.devices_touched, 0);
}

TEST(Evaluate, FullCollectionAtOneStop) {
    // Device 300 MB at 150 MB/s needs 2 s dwell.
    const auto inst = manual_instance({{{50.0, 50.0}, 300.0}});
    model::FlightPlan plan;
    plan.stops.push_back({{50.0, 50.0}, 2.0, -1});
    const auto ev = evaluate_plan(inst, plan);
    EXPECT_DOUBLE_EQ(ev.collected_mb, 300.0);
    EXPECT_EQ(ev.devices_touched, 1);
    EXPECT_EQ(ev.devices_drained, 1);
}

TEST(Evaluate, PartialCollectionShortDwell) {
    const auto inst = manual_instance({{{50.0, 50.0}, 300.0}});
    model::FlightPlan plan;
    plan.stops.push_back({{50.0, 50.0}, 1.0, -1});  // 150 MB of 300
    const auto ev = evaluate_plan(inst, plan);
    EXPECT_DOUBLE_EQ(ev.collected_mb, 150.0);
    EXPECT_EQ(ev.devices_touched, 1);
    EXPECT_EQ(ev.devices_drained, 0);
}

TEST(Evaluate, DeviceOutsideCoverageIgnored) {
    const auto inst = manual_instance({{{150.0, 150.0}, 300.0}});
    model::FlightPlan plan;
    plan.stops.push_back({{50.0, 50.0}, 10.0, -1});  // > 50 m away
    const auto ev = evaluate_plan(inst, plan);
    EXPECT_DOUBLE_EQ(ev.collected_mb, 0.0);
}

TEST(Evaluate, ConcurrentUploadsAtOneStop) {
    // Two devices in range; both upload simultaneously (OFDMA).
    const auto inst = manual_instance(
        {{{40.0, 50.0}, 150.0}, {{60.0, 50.0}, 300.0}});
    model::FlightPlan plan;
    plan.stops.push_back({{50.0, 50.0}, 2.0, -1});
    const auto ev = evaluate_plan(inst, plan);
    EXPECT_DOUBLE_EQ(ev.collected_mb, 450.0);
    EXPECT_EQ(ev.devices_drained, 2);
}

TEST(Evaluate, ResidualCarriedAcrossStops) {
    // One device covered by two stops, each dwell covers half the data.
    const auto inst = manual_instance({{{50.0, 50.0}, 300.0}});
    model::FlightPlan plan;
    plan.stops.push_back({{30.0, 50.0}, 1.0, -1});
    plan.stops.push_back({{70.0, 50.0}, 1.0, -1});
    const auto ev = evaluate_plan(inst, plan);
    EXPECT_DOUBLE_EQ(ev.collected_mb, 300.0);
    EXPECT_EQ(ev.devices_drained, 1);
    EXPECT_DOUBLE_EQ(ev.per_device_mb[0], 300.0);
}

TEST(Evaluate, NoDoubleCountingWithOverlap) {
    // Device fully drained at the first stop contributes nothing at the
    // second overlapping stop.
    const auto inst = manual_instance({{{50.0, 50.0}, 150.0}});
    model::FlightPlan plan;
    plan.stops.push_back({{50.0, 50.0}, 5.0, -1});
    plan.stops.push_back({{55.0, 50.0}, 5.0, -1});
    const auto ev = evaluate_plan(inst, plan);
    EXPECT_DOUBLE_EQ(ev.collected_mb, 150.0);
}

TEST(Evaluate, EnergyAccountingMatchesPlan) {
    const auto inst = manual_instance({{{30.0, 40.0}, 300.0}});
    model::FlightPlan plan;
    plan.stops.push_back({{30.0, 40.0}, 2.0, -1});
    const auto ev = evaluate_plan(inst, plan);
    EXPECT_DOUBLE_EQ(ev.energy_j, plan.total_energy(inst.depot, inst.uav));
    EXPECT_DOUBLE_EQ(ev.tour_time_s,
                     plan.energy(inst.depot, inst.uav).total_s());
}

TEST(Evaluate, InfeasibleFlagged) {
    auto inst = manual_instance({{{30.0, 40.0}, 300.0}});
    inst.uav.energy_j = 100.0;  // plan needs 1300 J
    model::FlightPlan plan;
    plan.stops.push_back({{30.0, 40.0}, 2.0, -1});
    const auto ev = evaluate_plan(inst, plan);
    EXPECT_FALSE(ev.energy_feasible);
}

TEST(Evaluate, UnreachableStopsEarnNoCredit) {
    // Regression: an energy-infeasible plan used to report full
    // collected_mb even though the battery dies before the first stop.
    // Depot->stop is 50 m = 5000 J of travel; the 100 J battery dies on
    // the way out, so nothing is actually collected.
    auto inst = manual_instance({{{30.0, 40.0}, 300.0}});
    inst.uav.energy_j = 100.0;
    model::FlightPlan plan;
    plan.stops.push_back({{30.0, 40.0}, 2.0, -1});
    const auto ev = evaluate_plan(inst, plan);
    EXPECT_DOUBLE_EQ(ev.collected_mb, 0.0);
    EXPECT_DOUBLE_EQ(ev.per_device_mb[0], 0.0);
    EXPECT_DOUBLE_EQ(ev.optimistic_mb, 300.0);  // battery-blind credit
    EXPECT_TRUE(ev.truncated);
    EXPECT_EQ(ev.first_unreached_stop, 0);
    EXPECT_DOUBLE_EQ(ev.energy_spent_j, 100.0);  // everything it had
    EXPECT_EQ(ev.devices_touched, 0);
}

TEST(Evaluate, PartialHoverCollectsPartially) {
    // Battery covers the outbound leg (5000 J) plus 1 s of hover (150 J):
    // the UAV collects 1 s x 150 MB/s = 150 MB, then dies mid-dwell.
    auto inst = manual_instance({{{30.0, 40.0}, 300.0}});
    inst.uav.energy_j = 5150.0;
    model::FlightPlan plan;
    plan.stops.push_back({{30.0, 40.0}, 2.0, -1});
    const auto ev = evaluate_plan(inst, plan);
    EXPECT_NEAR(ev.collected_mb, 150.0, 1e-9);
    EXPECT_DOUBLE_EQ(ev.optimistic_mb, 300.0);
    EXPECT_TRUE(ev.truncated);
    EXPECT_EQ(ev.first_unreached_stop, -1);  // stop itself was reached
}

TEST(Evaluate, FeasiblePlanOptimisticEqualsActual) {
    const auto inst = manual_instance({{{50.0, 50.0}, 300.0}});
    model::FlightPlan plan;
    plan.stops.push_back({{50.0, 50.0}, 2.0, -1});
    const auto ev = evaluate_plan(inst, plan);
    EXPECT_TRUE(ev.energy_feasible);
    EXPECT_FALSE(ev.truncated);
    EXPECT_DOUBLE_EQ(ev.collected_mb, ev.optimistic_mb);
    EXPECT_DOUBLE_EQ(ev.energy_spent_j, ev.energy_j);
    EXPECT_DOUBLE_EQ(ev.executed_time_s, ev.tour_time_s);
}

TEST(Evaluate, BoundaryDeviceCollected) {
    // Device exactly at R0 = 50 m from the stop is covered (closed disk).
    const auto inst = manual_instance({{{100.0, 50.0}, 150.0}});
    model::FlightPlan plan;
    plan.stops.push_back({{50.0, 50.0}, 1.0, -1});
    const auto ev = evaluate_plan(inst, plan);
    EXPECT_DOUBLE_EQ(ev.collected_mb, 150.0);
}

TEST(Evaluate, ZeroDataDeviceNotTouched) {
    const auto inst = manual_instance({{{50.0, 50.0}, 0.0}});
    model::FlightPlan plan;
    plan.stops.push_back({{50.0, 50.0}, 1.0, -1});
    const auto ev = evaluate_plan(inst, plan);
    EXPECT_EQ(ev.devices_touched, 0);
    EXPECT_DOUBLE_EQ(ev.collected_mb, 0.0);
}

}  // namespace
}  // namespace uavdc::core
