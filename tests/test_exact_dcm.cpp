#include "uavdc/core/exact_dcm.hpp"

#include <gtest/gtest.h>

#include "uavdc/util/check.hpp"

#include "test_util.hpp"
#include "uavdc/core/algorithm1.hpp"
#include "uavdc/core/algorithm2.hpp"
#include "uavdc/core/algorithm3.hpp"
#include "uavdc/core/evaluate.hpp"

namespace uavdc::core {
namespace {

/// Tiny instances whose coarse candidate grid stays within the exact
/// solver's enumeration guard.
model::Instance tiny_instance(std::uint64_t seed, double energy = 4.0e4) {
    return testing::small_instance(12, 180.0, seed, energy);
}

ExactDcmConfig coarse_cfg() {
    ExactDcmConfig cfg;
    cfg.candidates.delta_m = 60.0;  // few, coarse candidates
    cfg.max_candidates_for_exact = 12;
    return cfg;
}

TEST(ExactDcm, FeasibleAndConsistentWithEvaluator) {
    for (std::uint64_t seed : {1u, 2u, 3u}) {
        const auto inst = tiny_instance(seed);
        const auto res = solve_exact_dcm(inst, coarse_cfg());
        EXPECT_TRUE(res.plan.feasible(inst.depot, inst.uav, 1e-6));
        EXPECT_LE(res.energy_j, inst.uav.energy_j + 1e-6);
        // The evaluator must find at least the claimed union volume.
        const auto ev = evaluate_plan(inst, res.plan);
        EXPECT_GE(ev.collected_mb, res.collected_mb - 1e-6);
        EXPECT_GT(res.subsets_checked, 0);
    }
}

TEST(ExactDcm, DominatesHeuristicsOnSameCandidates) {
    // On the *same candidate set*, the exact solver is an upper bound for
    // Algorithm 2's greedy rule (both do full collection per stop).
    for (std::uint64_t seed : {4u, 5u, 6u, 7u}) {
        const auto inst = tiny_instance(seed);
        const auto cfg = coarse_cfg();
        const auto exact = solve_exact_dcm(inst, cfg);

        Algorithm2Config a2;
        a2.candidates = cfg.candidates;
        const auto greedy = GreedyCoveragePlanner(a2).plan(inst);
        const double greedy_mb =
            evaluate_plan(inst, greedy.plan).collected_mb;
        EXPECT_GE(exact.collected_mb, greedy_mb - 1e-6) << "seed " << seed;
    }
}

TEST(ExactDcm, HeuristicsWithinReasonableGap) {
    // The paper's heuristics should land within 25% of optimal on tiny
    // instances (aggregate over seeds; individually they can be worse).
    double exact_sum = 0.0;
    double greedy_sum = 0.0;
    for (std::uint64_t seed : {8u, 9u, 10u, 11u, 12u}) {
        const auto inst = tiny_instance(seed, 3.0e4);
        const auto cfg = coarse_cfg();
        exact_sum += solve_exact_dcm(inst, cfg).collected_mb;
        Algorithm2Config a2;
        a2.candidates = cfg.candidates;
        greedy_sum +=
            evaluate_plan(inst, GreedyCoveragePlanner(a2).plan(inst).plan)
                .collected_mb;
    }
    EXPECT_GE(greedy_sum, 0.75 * exact_sum);
}

TEST(ExactDcm, GuardsAgainstLargeCandidateSets) {
    const auto inst = testing::small_instance(60, 400.0, 13);
    ExactDcmConfig cfg;
    cfg.candidates.delta_m = 10.0;  // hundreds of candidates
    EXPECT_THROW((void)solve_exact_dcm(inst, cfg), util::ContractViolation);
}

TEST(ExactDcm, EmptyInstance) {
    model::Instance inst;
    inst.region = geom::Aabb::of_size(100.0, 100.0);
    inst.depot = {0.0, 0.0};
    const auto res = solve_exact_dcm(inst, coarse_cfg());
    EXPECT_TRUE(res.plan.empty());
    EXPECT_DOUBLE_EQ(res.collected_mb, 0.0);
}

TEST(ExactDcm, TinyBudgetCollectsNothing) {
    auto inst = tiny_instance(14);
    inst.uav.energy_j = 1.0;
    const auto res = solve_exact_dcm(inst, coarse_cfg());
    EXPECT_TRUE(res.plan.empty());
    EXPECT_DOUBLE_EQ(res.collected_mb, 0.0);
}

}  // namespace
}  // namespace uavdc::core
