// Failure-injection suite: deliberately infeasible plans, drained
// batteries at every phase of the tour, and corrupted inputs. The
// simulator must degrade gracefully (truncate, never overdraw, account
// exactly); the loaders must reject rather than mis-load.

#include <gtest/gtest.h>

#include "test_util.hpp"
#include "uavdc/core/algorithm2.hpp"
#include "uavdc/core/validate_plan.hpp"
#include "uavdc/io/serialize.hpp"
#include "uavdc/sim/simulator.hpp"
#include "uavdc/util/rng.hpp"

namespace uavdc {
namespace {

using testing::manual_instance;
using testing::small_instance;

TEST(FailureInjection, BatteryFractionSweepNeverOverdraws) {
    // Run the same plan at every battery fraction; energy used must never
    // exceed the battery and must be monotone in it.
    const auto inst = small_instance(25, 280.0, 131);
    core::Algorithm2Config cfg;
    cfg.candidates.delta_m = 20.0;
    const auto plan = core::GreedyCoveragePlanner(cfg).plan(inst).plan;
    const double full =
        plan.total_energy(inst.depot, inst.uav);
    sim::SimConfig scfg;
    scfg.record_trace = false;
    double prev_used = -1.0;
    for (double frac : {0.05, 0.2, 0.4, 0.6, 0.8, 0.99}) {
        auto starved = inst;
        starved.uav.energy_j = frac * full;
        const auto rep = sim::Simulator(scfg).run(starved, plan);
        EXPECT_LE(rep.energy_used_j, starved.uav.energy_j + 1e-6)
            << "frac " << frac;
        EXPECT_TRUE(rep.battery_depleted) << "frac " << frac;
        EXPECT_FALSE(rep.completed) << "frac " << frac;
        EXPECT_GE(rep.energy_used_j, prev_used - 1e-6);
        prev_used = rep.energy_used_j;
    }
}

TEST(FailureInjection, TruncationAccountingConsistent) {
    // Wherever the battery dies, time/energy bookkeeping must reconcile:
    // energy == travel_s * P_t + hover_s * P_h (to fp tolerance).
    const auto inst = small_instance(20, 250.0, 132);
    core::Algorithm2Config cfg;
    cfg.candidates.delta_m = 20.0;
    const auto plan = core::GreedyCoveragePlanner(cfg).plan(inst).plan;
    const double full = plan.total_energy(inst.depot, inst.uav);
    sim::SimConfig scfg;
    scfg.record_trace = false;
    for (double frac : {0.1, 0.3, 0.5, 0.7, 0.9}) {
        auto starved = inst;
        starved.uav.energy_j = frac * full;
        const auto rep = sim::Simulator(scfg).run(starved, plan);
        const double recomputed =
            rep.travel_s * starved.uav.travel_power_w() +
            rep.hover_s * starved.uav.hover_power_w;
        EXPECT_NEAR(rep.energy_used_j, recomputed, 1e-6) << "frac " << frac;
    }
}

TEST(FailureInjection, DepletionDuringFinalReturnLeg) {
    // Enough energy for the outbound leg and hover, not for the return.
    auto inst = manual_instance({{{100.0, 0.0}, 150.0}}, 300.0);
    model::FlightPlan plan;
    plan.stops.push_back({{100.0, 0.0}, 1.0, -1});
    // Outbound 100 m = 1e4 J, hover 1 s = 150 J, return needs 1e4 more.
    inst.uav.energy_j = 1.0e4 + 150.0 + 5.0e3;
    const auto rep = sim::Simulator().run(inst, plan);
    EXPECT_TRUE(rep.battery_depleted);
    EXPECT_FALSE(rep.completed);
    // The data was already collected before the battery died.
    EXPECT_DOUBLE_EQ(rep.collected_mb, 150.0);
    EXPECT_EQ(rep.stops_visited, 1);
}

TEST(FailureInjection, ValidatorCatchesSimulatorTruncationCases) {
    // Any plan the simulator truncates must fail validation up front.
    util::Rng rng(133);
    const auto inst = small_instance(20, 250.0, 134);
    for (int trial = 0; trial < 10; ++trial) {
        model::FlightPlan plan;
        const int stops = static_cast<int>(rng.uniform_int(1, 6));
        for (int i = 0; i < stops; ++i) {
            plan.stops.push_back(
                {{rng.uniform(0.0, 250.0), rng.uniform(0.0, 250.0)},
                 rng.uniform(0.0, 400.0),
                 -1});
        }
        sim::SimConfig scfg;
        scfg.record_trace = false;
        const auto rep = sim::Simulator(scfg).run(inst, plan);
        const auto val = core::validate_plan(inst, plan);
        if (!rep.completed) {
            EXPECT_FALSE(val.ok())
                << "trial " << trial
                << ": simulator truncated but validator passed";
        }
    }
}

TEST(FailureInjection, LoaderRejectsTamperedInstances) {
    const auto inst = small_instance(8, 150.0, 135);
    // Device pushed outside the region.
    {
        io::Json doc = io::to_json(inst);
        doc["devices"].as_array()[0]["x"] = 1e9;
        EXPECT_THROW((void)io::instance_from_json(doc),
                     std::invalid_argument);
    }
    // Missing required section.
    {
        io::Json doc = io::to_json(inst);
        doc.as_object().erase("uav");
        EXPECT_THROW((void)io::instance_from_json(doc),
                     std::runtime_error);
    }
    // Wrong type for devices.
    {
        io::Json doc = io::to_json(inst);
        doc["devices"] = "not-an-array";
        EXPECT_THROW((void)io::instance_from_json(doc),
                     std::runtime_error);
    }
}

TEST(FailureInjection, ZeroCapacityBatteryDoesNothing) {
    auto inst = manual_instance({{{50.0, 50.0}, 100.0}});
    inst.uav.energy_j = 1e-9;
    model::FlightPlan plan;
    plan.stops.push_back({{50.0, 50.0}, 1.0, -1});
    const auto rep = sim::Simulator().run(inst, plan);
    EXPECT_DOUBLE_EQ(rep.collected_mb, 0.0);
    EXPECT_LE(rep.energy_used_j, 1e-9 + 1e-12);
}

}  // namespace
}  // namespace uavdc
