#include "uavdc/util/flags.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace uavdc::util {
namespace {

Flags make(std::vector<const char*> args) {
    args.insert(args.begin(), "prog");
    return Flags(static_cast<int>(args.size()), args.data());
}

TEST(Flags, EqualsSyntax) {
    const auto f = make({"--delta=5.5", "--n=42", "--name=test"});
    EXPECT_DOUBLE_EQ(f.get_double("delta", 0.0), 5.5);
    EXPECT_EQ(f.get_int("n", 0), 42);
    EXPECT_EQ(f.get_string("name", ""), "test");
}

TEST(Flags, SpaceSyntax) {
    const auto f = make({"--delta", "7.5", "--label", "abc"});
    EXPECT_DOUBLE_EQ(f.get_double("delta", 0.0), 7.5);
    EXPECT_EQ(f.get_string("label", ""), "abc");
}

TEST(Flags, BareBooleans) {
    const auto f = make({"--full", "--verbose=false", "--quiet=0",
                         "--loud=yes"});
    EXPECT_TRUE(f.get_bool("full", false));
    EXPECT_FALSE(f.get_bool("verbose", true));
    EXPECT_FALSE(f.get_bool("quiet", true));
    EXPECT_TRUE(f.get_bool("loud", false));
    EXPECT_TRUE(f.get_bool("absent", true));
    EXPECT_FALSE(f.get_bool("absent2", false));
}

TEST(Flags, BadBooleanThrows) {
    const auto f = make({"--x=maybe"});
    EXPECT_THROW(f.get_bool("x", false), std::invalid_argument);
}

TEST(Flags, FallbacksWhenAbsent) {
    const auto f = make({});
    EXPECT_DOUBLE_EQ(f.get_double("d", 1.25), 1.25);
    EXPECT_EQ(f.get_int("i", -3), -3);
    EXPECT_EQ(f.get_int64("big", 1LL << 40), 1LL << 40);
    EXPECT_EQ(f.get_string("s", "dflt"), "dflt");
    EXPECT_FALSE(f.has("d"));
}

TEST(Flags, Lists) {
    const auto f = make({"--deltas=5,10,20.5", "--ks=1,2,4"});
    EXPECT_EQ(f.get_double_list("deltas", {}),
              (std::vector<double>{5.0, 10.0, 20.5}));
    EXPECT_EQ(f.get_int_list("ks", {}), (std::vector<int>{1, 2, 4}));
    EXPECT_EQ(f.get_int_list("absent", {9}), (std::vector<int>{9}));
}

TEST(Flags, Positional) {
    const auto f = make({"input.txt", "--x=1", "output.txt"});
    EXPECT_EQ(f.positional(),
              (std::vector<std::string>{"input.txt", "output.txt"}));
    EXPECT_EQ(f.program(), "prog");
}

TEST(Flags, NegativeNumberValueViaEquals) {
    const auto f = make({"--shift=-4.5"});
    EXPECT_DOUBLE_EQ(f.get_double("shift", 0.0), -4.5);
}

TEST(Flags, LastValueWins) {
    const auto f = make({"--n=1", "--n=2"});
    EXPECT_EQ(f.get_int("n", 0), 2);
}

}  // namespace
}  // namespace uavdc::util
