#include "uavdc/core/fleet.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"
#include "uavdc/core/multi_tour.hpp"

namespace uavdc::core {
namespace {

using testing::small_instance;

FleetConfig fleet_cfg(int uavs) {
    FleetConfig cfg;
    cfg.uavs = uavs;
    cfg.inner.candidates.delta_m = 20.0;
    cfg.inner.k = 2;
    return cfg;
}

TEST(Fleet, EveryTourIndividuallyFeasible) {
    auto inst = small_instance(40, 350.0, 71);
    inst.uav.energy_j = 3.0e4;
    const auto res = plan_fleet(inst, fleet_cfg(3));
    EXPECT_EQ(res.tours.size(), 3u);
    for (const auto& tour : res.tours) {
        EXPECT_TRUE(tour.feasible(inst.depot, inst.uav, 1e-6));
    }
    EXPECT_GT(res.planned_mb, 0.0);
    EXPECT_LE(res.planned_mb, inst.total_data_mb() + 1e-6);
}

TEST(Fleet, MoreUavsCollectMoreUnderScarcity) {
    // Centre depot so every zone is within flying range — then the budget
    // (not reach) binds, and extra UAVs add real capacity.
    auto inst = small_instance(40, 350.0, 72);
    inst.depot = inst.region.center();
    inst.uav.energy_j = 2.0e4;
    const double one = plan_fleet(inst, fleet_cfg(1)).planned_mb;
    const double three = plan_fleet(inst, fleet_cfg(3)).planned_mb;
    EXPECT_GT(one, 0.0);
    EXPECT_GT(three, one);
}

TEST(Fleet, MakespanIsSlowestTourNotSum) {
    auto inst = small_instance(40, 350.0, 73);
    inst.uav.energy_j = 3.0e4;
    const auto res = plan_fleet(inst, fleet_cfg(3));
    double slowest = 0.0;
    double sum = 0.0;
    for (const auto& tour : res.tours) {
        const double t = tour.energy(inst.depot, inst.uav).total_s();
        slowest = std::max(slowest, t);
        sum += t;
    }
    EXPECT_NEAR(res.makespan_s, slowest, 1e-9);
    EXPECT_LT(res.makespan_s, sum);
}

TEST(Fleet, BeatsSequentialMakespanAtSimilarVolume) {
    // Fleet of 3 vs 3 sequential sorties: similar data, much shorter
    // wall-clock mission (parallelism is the whole point).
    auto inst = small_instance(40, 350.0, 74);
    inst.uav.energy_j = 2.5e4;
    const auto fleet = plan_fleet(inst, fleet_cfg(3));
    MultiTourConfig mt;
    mt.tours = 3;
    mt.inner.candidates.delta_m = 20.0;
    mt.inner.k = 2;
    const auto seq = plan_multi_tour(inst, mt);
    EXPECT_LT(fleet.makespan_s, seq.makespan_s);
    // Sequential replanning sees residuals, so it may collect somewhat
    // more; the fleet must stay in the same league.
    EXPECT_GE(fleet.planned_mb, 0.6 * seq.planned_mb);
}

TEST(Fleet, PlannedMatchesEvaluateFleet) {
    auto inst = small_instance(35, 320.0, 75);
    inst.uav.energy_j = 3.0e4;
    const auto res = plan_fleet(inst, fleet_cfg(2));
    EXPECT_NEAR(res.planned_mb, evaluate_fleet(inst, res.tours), 1e-6);
}

TEST(Fleet, SingleUavMatchesPlainPlanner) {
    auto inst = small_instance(25, 280.0, 76);
    inst.uav.energy_j = 3.0e4;
    const auto fleet = plan_fleet(inst, fleet_cfg(1));
    ASSERT_EQ(fleet.tours.size(), 1u);
    EXPECT_GT(fleet.planned_mb, 0.0);
}

TEST(Fleet, DegenerateInputs) {
    model::Instance empty;
    empty.region = geom::Aabb::of_size(10.0, 10.0);
    empty.depot = {0.0, 0.0};
    EXPECT_TRUE(plan_fleet(empty, fleet_cfg(2)).tours.empty());
    const auto inst = small_instance(10, 200.0, 77);
    FleetConfig bad = fleet_cfg(0);
    EXPECT_TRUE(plan_fleet(inst, bad).tours.empty());
    EXPECT_DOUBLE_EQ(evaluate_fleet(inst, {}), 0.0);
}

}  // namespace
}  // namespace uavdc::core
