#include "uavdc/net/frame.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace uavdc::net {
namespace {

/// Feed the whole buffer and drain every complete frame.
std::vector<Frame> drain(FrameDecoder& d, const std::string& bytes) {
    d.feed(bytes);
    std::vector<Frame> out;
    while (auto f = d.next()) out.push_back(*f);
    return out;
}

TEST(Frame, NewlineFramesDecode) {
    FrameDecoder d;
    const auto frames = drain(d, "{\"id\":\"a\"}\n{\"id\":\"b\"}\n");
    ASSERT_EQ(frames.size(), 2u);
    EXPECT_EQ(frames[0].payload, "{\"id\":\"a\"}");
    EXPECT_FALSE(frames[0].length_prefixed);
    EXPECT_FALSE(frames[0].malformed);
    EXPECT_EQ(frames[1].payload, "{\"id\":\"b\"}");
    EXPECT_EQ(d.frames(), 2u);
    EXPECT_EQ(d.malformed(), 0u);
    EXPECT_FALSE(d.mid_frame());
}

TEST(Frame, CrlfIsTolerated) {
    FrameDecoder d;
    const auto frames = drain(d, "{\"id\":\"a\"}\r\n");
    ASSERT_EQ(frames.size(), 1u);
    EXPECT_EQ(frames[0].payload, "{\"id\":\"a\"}");
}

TEST(Frame, LengthPrefixedFramesDecode) {
    FrameDecoder d;
    const std::string payload = "{\"id\":\"x\"}";
    const auto frames = drain(d, encode_frame(payload, true));
    ASSERT_EQ(frames.size(), 1u);
    EXPECT_EQ(frames[0].payload, payload);
    EXPECT_TRUE(frames[0].length_prefixed);
}

TEST(Frame, LengthPrefixedIsBinarySafe) {
    // Embedded newlines and '$' bytes must survive — exactly what the
    // newline framing cannot carry.
    FrameDecoder d;
    const std::string payload = "line1\nline2\n$17\nnot-a-header";
    const auto frames = drain(d, encode_frame(payload, true));
    ASSERT_EQ(frames.size(), 1u);
    EXPECT_EQ(frames[0].payload, payload);
}

TEST(Frame, SplitAcrossArbitraryFeedBoundaries) {
    // Byte-at-a-time delivery of a mixed stream must yield the same frames
    // as one big feed: the decoder owns all reassembly state.
    const std::string stream = encode_frame("{\"id\":\"lp\"}", true) +
                               "{\"id\":\"nl\"}\n" +
                               encode_frame("tail", true);
    FrameDecoder d;
    std::vector<Frame> frames;
    for (const char c : stream) {
        d.feed(&c, 1);
        while (auto f = d.next()) frames.push_back(*f);
    }
    ASSERT_EQ(frames.size(), 3u);
    EXPECT_EQ(frames[0].payload, "{\"id\":\"lp\"}");
    EXPECT_TRUE(frames[0].length_prefixed);
    EXPECT_EQ(frames[1].payload, "{\"id\":\"nl\"}");
    EXPECT_FALSE(frames[1].length_prefixed);
    EXPECT_EQ(frames[2].payload, "tail");
    EXPECT_FALSE(d.mid_frame());
}

TEST(Frame, MergedFramesInOneFeed) {
    FrameDecoder d;
    std::string merged;
    for (int i = 0; i < 5; ++i) {
        merged += encode_frame("p" + std::to_string(i), i % 2 == 0);
    }
    const auto frames = drain(d, merged);
    ASSERT_EQ(frames.size(), 5u);
    for (int i = 0; i < 5; ++i) {
        EXPECT_EQ(frames[static_cast<std::size_t>(i)].payload,
                  "p" + std::to_string(i));
    }
}

TEST(Frame, TruncatedFrameIsPendingNotDelivered) {
    FrameDecoder d;
    d.feed("$10\nonly4");
    EXPECT_FALSE(d.next().has_value());
    EXPECT_TRUE(d.mid_frame());  // EOF now would mean peer truncation
    d.feed("chars!");            // completes the 10 declared bytes
    auto f = d.next();
    ASSERT_TRUE(f.has_value());
    EXPECT_EQ(f->payload, "only4chars");
    // The trailing '!' starts the next (newline) frame.
    EXPECT_TRUE(d.mid_frame());
}

TEST(Frame, OversizedDeclaredLengthIsMalformed) {
    FrameDecoder d(64);
    auto frames = drain(d, "$65\nx");
    ASSERT_EQ(frames.size(), 1u);
    EXPECT_TRUE(frames[0].malformed);
    EXPECT_NE(frames[0].error.find("length header"), std::string::npos);
    EXPECT_EQ(d.malformed(), 1u);
    // The connection resyncs: a good frame after the damage decodes.
    frames = drain(d, "ok\n");
    ASSERT_EQ(frames.size(), 1u);
    EXPECT_FALSE(frames[0].malformed);
    // 'x' was carried into the resynced newline frame's payload.
    EXPECT_EQ(frames[0].payload, "xok");
}

TEST(Frame, OversizedNewlineFrameIsCutOff) {
    FrameDecoder d(8);
    // No newline ever arrives; memory must not balloon.
    const auto frames = drain(d, std::string(64, 'a'));
    ASSERT_EQ(frames.size(), 1u);
    EXPECT_TRUE(frames[0].malformed);
    EXPECT_EQ(d.malformed(), 1u);
    EXPECT_FALSE(d.mid_frame());
}

TEST(Frame, BadLengthHeaderResyncsAtNewline) {
    FrameDecoder d;
    const auto frames = drain(d, "$12x\n{\"id\":\"ok\"}\n");
    ASSERT_EQ(frames.size(), 2u);
    EXPECT_TRUE(frames[0].malformed);
    EXPECT_FALSE(frames[1].malformed);
    EXPECT_EQ(frames[1].payload, "{\"id\":\"ok\"}");
}

TEST(Frame, UnterminatedHeaderIsRejected) {
    FrameDecoder d;
    const auto frames = drain(d, "$" + std::string(40, '1'));
    ASSERT_EQ(frames.size(), 1u);
    EXPECT_TRUE(frames[0].malformed);
    EXPECT_NE(frames[0].error.find("unterminated"), std::string::npos);
}

TEST(Frame, HeaderOverflowIsRejectedNotWrapped) {
    FrameDecoder d;
    // 2^64-ish declared length must reject, not wrap around to something
    // small and "succeed".
    const auto frames = drain(d, "$99999999999999999999\npayload\n");
    ASSERT_GE(frames.size(), 1u);
    EXPECT_TRUE(frames[0].malformed);
}

TEST(Frame, EmptyPayloadsRoundTrip) {
    FrameDecoder d;
    const auto frames = drain(d, encode_frame("", true) + "\n");
    ASSERT_EQ(frames.size(), 2u);
    EXPECT_EQ(frames[0].payload, "");
    EXPECT_TRUE(frames[0].length_prefixed);
    EXPECT_EQ(frames[1].payload, "");
    EXPECT_FALSE(frames[1].length_prefixed);
}

TEST(Frame, EncodeDecodeRoundTripMatchesFraming) {
    for (const bool lp : {true, false}) {
        FrameDecoder d;
        const auto frames = drain(d, encode_frame("{\"k\":1}", lp));
        ASSERT_EQ(frames.size(), 1u);
        EXPECT_EQ(frames[0].payload, "{\"k\":1}");
        EXPECT_EQ(frames[0].length_prefixed, lp);
    }
}

}  // namespace
}  // namespace uavdc::net
