// Randomized property tests: structures survive round-trips and the
// routing substrate agrees with brute-force references on random inputs.

#include <gtest/gtest.h>

#include <queue>
#include <string>

#include "uavdc/geom/obstacle_field.hpp"
#include "uavdc/io/json.hpp"
#include "uavdc/io/serialize.hpp"
#include "uavdc/util/rng.hpp"
#include "uavdc/workload/generator.hpp"

namespace uavdc {
namespace {

// ---------------------------------------------------------------------------
// JSON: random documents round-trip through dump + parse.
// ---------------------------------------------------------------------------

io::Json random_json(util::Rng& rng, int depth) {
    const int kind =
        static_cast<int>(rng.uniform_int(0, depth > 0 ? 5 : 3));
    switch (kind) {
        case 0:
            return io::Json(nullptr);
        case 1:
            return io::Json(rng.bernoulli(0.5));
        case 2:
            return io::Json(rng.uniform(-1e6, 1e6));
        case 3: {
            std::string s;
            const auto len = rng.uniform_int(0, 12);
            for (int i = 0; i < len; ++i) {
                // Mix printable ASCII with characters needing escapes.
                const char pool[] =
                    "abcXYZ019 _-\"\\\n\t,{}[]:";
                s += pool[rng.uniform_int(
                    0, static_cast<std::int64_t>(sizeof(pool)) - 2)];
            }
            return io::Json(std::move(s));
        }
        case 4: {
            io::Json::Array arr;
            const auto len = rng.uniform_int(0, 5);
            for (int i = 0; i < len; ++i) {
                arr.push_back(random_json(rng, depth - 1));
            }
            return io::Json(std::move(arr));
        }
        default: {
            io::Json::Object obj;
            const auto len = rng.uniform_int(0, 5);
            for (int i = 0; i < len; ++i) {
                obj["k" + std::to_string(i) +
                    std::to_string(rng.uniform_int(0, 99))] =
                    random_json(rng, depth - 1);
            }
            return io::Json(std::move(obj));
        }
    }
}

class JsonFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(JsonFuzz, RandomDocumentRoundTrips) {
    util::Rng rng(GetParam());
    for (int trial = 0; trial < 40; ++trial) {
        const io::Json doc = random_json(rng, 4);
        const io::Json compact = io::Json::parse(doc.dump());
        EXPECT_EQ(compact, doc) << "compact, trial " << trial;
        const io::Json pretty = io::Json::parse(doc.dump(2));
        EXPECT_EQ(pretty, doc) << "pretty, trial " << trial;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsonFuzz,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

// ---------------------------------------------------------------------------
// Instance serialization fuzz: every generated workload round-trips.
// ---------------------------------------------------------------------------

class InstanceFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(InstanceFuzz, GeneratedInstanceRoundTrips) {
    util::Rng rng(GetParam());
    workload::GeneratorConfig cfg;
    cfg.num_devices = static_cast<int>(rng.uniform_int(0, 60));
    cfg.region_w = rng.uniform(50.0, 600.0);
    cfg.region_h = rng.uniform(50.0, 600.0);
    cfg.deployment = static_cast<workload::Deployment>(
        rng.uniform_int(0, 3));
    cfg.volumes = static_cast<workload::VolumeModel>(rng.uniform_int(0, 3));
    cfg.depot = {rng.uniform(-10.0, 700.0), rng.uniform(-10.0, 700.0)};
    const auto inst = workload::generate(cfg, GetParam() * 31 + 7);
    const auto back =
        io::instance_from_json(io::Json::parse(io::to_json(inst).dump()));
    ASSERT_EQ(back.devices.size(), inst.devices.size());
    for (std::size_t i = 0; i < inst.devices.size(); ++i) {
        EXPECT_DOUBLE_EQ(back.devices[i].pos.x, inst.devices[i].pos.x);
        EXPECT_DOUBLE_EQ(back.devices[i].pos.y, inst.devices[i].pos.y);
        EXPECT_DOUBLE_EQ(back.devices[i].data_mb, inst.devices[i].data_mb);
    }
    EXPECT_DOUBLE_EQ(back.uav.energy_j, inst.uav.energy_j);
    EXPECT_EQ(back.uav.travel_energy_model, inst.uav.travel_energy_model);
}

INSTANTIATE_TEST_SUITE_P(Seeds, InstanceFuzz,
                         ::testing::Values(11u, 12u, 13u, 14u, 15u, 16u));

// ---------------------------------------------------------------------------
// Obstacle routing vs. a fine-grid BFS reference.
// ---------------------------------------------------------------------------

double grid_bfs_path(const geom::ObstacleField& field, const geom::Vec2& a,
                     const geom::Vec2& b, double world, double step) {
    // 8-connected grid Dijkstra as an upper-bound reference.
    const int n = static_cast<int>(world / step) + 1;
    auto id = [&](int x, int y) { return y * n + x; };
    auto pos = [&](int x, int y) {
        return geom::Vec2{x * step, y * step};
    };
    const int sx = static_cast<int>(std::lround(a.x / step));
    const int sy = static_cast<int>(std::lround(a.y / step));
    const int tx = static_cast<int>(std::lround(b.x / step));
    const int ty = static_cast<int>(std::lround(b.y / step));
    std::vector<double> dist(static_cast<std::size_t>(n) * n, 1e18);
    using Item = std::pair<double, int>;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
    dist[static_cast<std::size_t>(id(sx, sy))] = 0.0;
    heap.push({0.0, id(sx, sy)});
    while (!heap.empty()) {
        const auto [d, u] = heap.top();
        heap.pop();
        const int ux = u % n;
        const int uy = u / n;
        if (d > dist[static_cast<std::size_t>(u)] + 1e-12) continue;
        if (ux == tx && uy == ty) return d;
        for (int dy = -1; dy <= 1; ++dy) {
            for (int dx = -1; dx <= 1; ++dx) {
                if (dx == 0 && dy == 0) continue;
                const int vx = ux + dx;
                const int vy = uy + dy;
                if (vx < 0 || vy < 0 || vx >= n || vy >= n) continue;
                if (!field.segment_clear(pos(ux, uy), pos(vx, vy))) {
                    continue;
                }
                const double w = geom::distance(pos(ux, uy), pos(vx, vy));
                const int v = id(vx, vy);
                if (d + w < dist[static_cast<std::size_t>(v)]) {
                    dist[static_cast<std::size_t>(v)] = d + w;
                    heap.push({d + w, v});
                }
            }
        }
    }
    return 1e18;
}

class ObstacleFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ObstacleFuzz, VisibilityPathNoLongerThanGridPath) {
    util::Rng rng(GetParam());
    const double world = 100.0;
    std::vector<geom::Aabb> zones;
    const auto nz = rng.uniform_int(1, 3);
    for (int i = 0; i < nz; ++i) {
        const geom::Vec2 lo{rng.uniform(10.0, 70.0),
                            rng.uniform(10.0, 70.0)};
        zones.push_back(geom::Aabb{
            lo, lo + geom::Vec2{rng.uniform(5.0, 25.0),
                                rng.uniform(5.0, 25.0)}});
    }
    const geom::ObstacleField field(zones);
    const double step = 5.0;
    auto snap = [&](const geom::Vec2& p) {
        return geom::Vec2{std::round(p.x / step) * step,
                          std::round(p.y / step) * step};
    };
    for (int trial = 0; trial < 5; ++trial) {
        // Snap endpoints to the reference lattice so both methods solve
        // the same query.
        const geom::Vec2 a =
            snap({rng.uniform(0.0, world), rng.uniform(0.0, world)});
        const geom::Vec2 b =
            snap({rng.uniform(0.0, world), rng.uniform(0.0, world)});
        if (field.blocked(a) || field.blocked(b)) continue;
        const auto res = field.shortest_path(a, b);
        ASSERT_TRUE(res.reachable);
        // Lower bound: straight-line distance.
        EXPECT_GE(res.length_m, geom::distance(a, b) - 1e-9);
        // Upper bound: any grid path (grid is coarse, so generous slack).
        const double grid = grid_bfs_path(field, a, b, world, step);
        if (grid < 1e17) {
            EXPECT_LE(res.length_m, grid + 1e-6)
                << "visibility path must not exceed a grid path";
        }
        // Every returned leg must be clear.
        for (std::size_t i = 0; i + 1 < res.waypoints.size(); ++i) {
            EXPECT_TRUE(field.segment_clear(res.waypoints[i],
                                            res.waypoints[i + 1]));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ObstacleFuzz,
                         ::testing::Values(21u, 22u, 23u, 24u, 25u, 26u));

}  // namespace
}  // namespace uavdc
