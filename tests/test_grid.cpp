#include "uavdc/geom/grid.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace uavdc::geom {
namespace {

TEST(Grid, DimensionsExactFit) {
    const Grid g(Aabb::of_size(100.0, 50.0), 10.0);
    EXPECT_EQ(g.nx(), 10);
    EXPECT_EQ(g.ny(), 5);
    EXPECT_EQ(g.num_cells(), 50);
}

TEST(Grid, DimensionsRoundUp) {
    const Grid g(Aabb::of_size(101.0, 49.0), 10.0);
    EXPECT_EQ(g.nx(), 11);
    EXPECT_EQ(g.ny(), 5);
}

TEST(Grid, TinyRegionHasOneCell) {
    const Grid g(Aabb::of_size(1.0, 1.0), 10.0);
    EXPECT_EQ(g.num_cells(), 1);
    EXPECT_EQ(g.center(0), Vec2(5.0, 5.0));
}

TEST(Grid, RejectsNonPositiveDelta) {
    EXPECT_THROW(Grid(Aabb::of_size(10.0, 10.0), 0.0),
                 std::invalid_argument);
    EXPECT_THROW(Grid(Aabb::of_size(10.0, 10.0), -1.0),
                 std::invalid_argument);
}

TEST(Grid, CenterOfFirstAndLastCells) {
    const Grid g(Aabb::of_size(100.0, 100.0), 10.0);
    EXPECT_EQ(g.center(0), Vec2(5.0, 5.0));
    EXPECT_EQ(g.center(g.num_cells() - 1), Vec2(95.0, 95.0));
}

TEST(Grid, RowMajorIndexing) {
    const Grid g(Aabb::of_size(30.0, 20.0), 10.0);  // 3 x 2
    EXPECT_EQ(g.id_of(0, 0), 0);
    EXPECT_EQ(g.id_of(2, 0), 2);
    EXPECT_EQ(g.id_of(0, 1), 3);
    EXPECT_EQ(g.ix_of(5), 2);
    EXPECT_EQ(g.iy_of(5), 1);
}

TEST(Grid, CellOfRoundTrip) {
    const Grid g(Aabb::of_size(100.0, 100.0), 10.0);
    for (int id = 0; id < g.num_cells(); ++id) {
        EXPECT_EQ(g.cell_of(g.center(id)), id);
    }
}

TEST(Grid, CellOfClampsOutside) {
    const Grid g(Aabb::of_size(100.0, 100.0), 10.0);
    EXPECT_EQ(g.cell_of({-5.0, -5.0}), 0);
    EXPECT_EQ(g.cell_of({200.0, 200.0}), g.num_cells() - 1);
}

TEST(Grid, CellBoxContainsCenter) {
    const Grid g(Aabb::of_size(100.0, 100.0), 7.0);
    for (int id = 0; id < g.num_cells(); ++id) {
        EXPECT_TRUE(g.cell_box(id).contains(g.center(id)));
    }
}

TEST(Grid, CellsWithCenterInDiskMatchesBruteForce) {
    const Grid g(Aabb::of_size(100.0, 100.0), 5.0);
    const Vec2 q{37.0, 61.0};
    const double r = 17.5;
    const auto fast = g.cells_with_center_in_disk(q, r);
    std::vector<int> slow;
    for (int id = 0; id < g.num_cells(); ++id) {
        if (distance(g.center(id), q) <= r) slow.push_back(id);
    }
    EXPECT_EQ(fast, slow);
    EXPECT_FALSE(fast.empty());
}

TEST(Grid, CellsWithCenterInDiskEmptyForNegativeRadius) {
    const Grid g(Aabb::of_size(10.0, 10.0), 1.0);
    EXPECT_TRUE(g.cells_with_center_in_disk({5.0, 5.0}, -1.0).empty());
}

TEST(Grid, AllCentersCount) {
    const Grid g(Aabb::of_size(40.0, 30.0), 10.0);
    const auto centers = g.all_centers();
    ASSERT_EQ(centers.size(), static_cast<std::size_t>(g.num_cells()));
    EXPECT_EQ(centers[0], g.center(0));
    EXPECT_EQ(centers.back(), g.center(g.num_cells() - 1));
}

TEST(Grid, OffsetRegion) {
    const Grid g(Aabb{{100.0, 200.0}, {140.0, 240.0}}, 20.0);
    EXPECT_EQ(g.num_cells(), 4);
    EXPECT_EQ(g.center(0), Vec2(110.0, 210.0));
    EXPECT_EQ(g.cell_of({135.0, 235.0}), 3);
}

}  // namespace
}  // namespace uavdc::geom
