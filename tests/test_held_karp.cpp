#include "uavdc/graph/held_karp.hpp"

#include <gtest/gtest.h>

#include "uavdc/util/check.hpp"

#include <algorithm>
#include <numeric>
#include <set>

#include "uavdc/graph/christofides.hpp"
#include "uavdc/util/rng.hpp"

namespace uavdc::graph {
namespace {

DenseGraph random_euclidean(int n, std::uint64_t seed) {
    util::Rng rng(seed);
    std::vector<geom::Vec2> pts;
    for (int i = 0; i < n; ++i) {
        pts.push_back({rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)});
    }
    return DenseGraph::euclidean(pts);
}

double brute_force(const DenseGraph& g) {
    std::vector<std::size_t> perm(g.size());
    std::iota(perm.begin(), perm.end(), std::size_t{0});
    double best = 1e18;
    do {
        best = std::min(best, g.tour_length(perm));
    } while (std::next_permutation(perm.begin() + 1, perm.end()));
    return best;
}

TEST(HeldKarp, TrivialSizes) {
    EXPECT_TRUE(held_karp_tour(DenseGraph(0)).empty());
    EXPECT_EQ(held_karp_tour(DenseGraph(1)), std::vector<std::size_t>{0});
    DenseGraph g2(2);
    g2.set_weight(0, 1, 3.0);
    EXPECT_DOUBLE_EQ(held_karp_length(g2), 6.0);
}

TEST(HeldKarp, MatchesBruteForce) {
    for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
        const DenseGraph g = random_euclidean(8, seed);
        EXPECT_NEAR(held_karp_length(g), brute_force(g), 1e-9)
            << "seed " << seed;
    }
}

TEST(HeldKarp, TourIsValidPermutation) {
    const DenseGraph g = random_euclidean(12, 5);
    const auto tour = held_karp_tour(g, 3);
    ASSERT_EQ(tour.size(), g.size());
    EXPECT_EQ(tour.front(), 3u);
    const std::set<std::size_t> s(tour.begin(), tour.end());
    EXPECT_EQ(s.size(), g.size());
    EXPECT_NEAR(g.tour_length(tour), held_karp_length(g, 3), 1e-9);
}

TEST(HeldKarp, StartNodeInvariantLength) {
    const DenseGraph g = random_euclidean(10, 6);
    const double base = held_karp_length(g, 0);
    for (std::size_t start : {1u, 4u, 9u}) {
        EXPECT_NEAR(held_karp_length(g, start), base, 1e-9);
    }
}

TEST(HeldKarp, ChristofidesWithinApproximationFactor) {
    // Exact matching is used at these sizes, so the 1.5 bound applies.
    for (std::uint64_t seed : {10u, 11u, 12u, 13u, 14u}) {
        const DenseGraph g = random_euclidean(13, seed);
        const double opt = held_karp_length(g);
        const double approx = g.tour_length(christofides_tour(g, 0));
        EXPECT_LE(approx, 1.5 * opt + 1e-9) << "seed " << seed;
        EXPECT_GE(approx, opt - 1e-9) << "seed " << seed;
    }
}

TEST(HeldKarp, ErrorsOnBadInput) {
    const DenseGraph g(5);
    EXPECT_THROW((void)held_karp_tour(g, 9), util::ContractViolation);
    EXPECT_THROW((void)held_karp_tour(DenseGraph(23)),
                 util::ContractViolation);
}

}  // namespace
}  // namespace uavdc::graph
