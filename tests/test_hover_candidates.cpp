#include "uavdc/core/hover_candidates.hpp"

#include <gtest/gtest.h>

#include <set>

#include "test_util.hpp"

namespace uavdc::core {
namespace {

using testing::manual_instance;
using testing::small_instance;

TEST(HoverCandidates, SingleDeviceQuantities) {
    const auto inst = manual_instance({{{100.0, 100.0}, 300.0}});
    HoverCandidateConfig cfg;
    cfg.delta_m = 20.0;
    cfg.dedupe_identical_coverage = false;
    cfg.max_candidates = 0;
    const auto set = build_hover_candidates(inst, cfg);
    ASSERT_GT(set.size(), 0u);
    for (const auto& c : set.candidates) {
        EXPECT_LE(geom::distance(c.pos, {100.0, 100.0}),
                  inst.uav.coverage_radius_m + 1e-9);
        EXPECT_DOUBLE_EQ(c.award_mb, 300.0);
        EXPECT_DOUBLE_EQ(c.dwell_s, 2.0);  // 300 MB / 150 MB/s
        EXPECT_DOUBLE_EQ(c.hover_energy_j, 300.0);  // 2 s * 150 W
        EXPECT_EQ(c.covered, std::vector<int>{0});
    }
    // Number of candidate cells ~ area of the disk / delta^2.
    EXPECT_GT(set.size(), 10u);
    EXPECT_EQ(set.grid_cells, 100);  // (200/20)^2
}

TEST(HoverCandidates, AwardSumsCoveredDevices) {
    const auto inst = manual_instance(
        {{{100.0, 100.0}, 200.0}, {{110.0, 100.0}, 400.0}});
    HoverCandidateConfig cfg;
    cfg.delta_m = 10.0;
    cfg.dedupe_identical_coverage = false;
    cfg.max_candidates = 0;
    const auto set = build_hover_candidates(inst, cfg);
    bool found_both = false;
    for (const auto& c : set.candidates) {
        if (c.covered.size() == 2) {
            found_both = true;
            EXPECT_DOUBLE_EQ(c.award_mb, 600.0);
            // Dwell: max upload time = 400/150.
            EXPECT_NEAR(c.dwell_s, 400.0 / 150.0, 1e-12);
        }
    }
    EXPECT_TRUE(found_both);
}

TEST(HoverCandidates, EmptyCellsDropped) {
    const auto inst = manual_instance({{{20.0, 20.0}, 100.0}}, 1000.0);
    HoverCandidateConfig cfg;
    cfg.delta_m = 50.0;
    cfg.max_candidates = 0;
    const auto set = build_hover_candidates(inst, cfg);
    EXPECT_EQ(set.grid_cells, 400);
    EXPECT_LT(set.nonzero_cells, 20);
    for (const auto& c : set.candidates) {
        EXPECT_FALSE(c.covered.empty());
    }
}

TEST(HoverCandidates, DedupeRemovesIdenticalCoverage) {
    // One isolated device with a fine grid: many cells share the identical
    // single-device coverage set; dedup keeps exactly one.
    const auto inst = manual_instance({{{100.0, 100.0}, 300.0}});
    HoverCandidateConfig fine;
    fine.delta_m = 5.0;
    fine.dedupe_identical_coverage = false;
    fine.max_candidates = 0;
    const auto raw = build_hover_candidates(inst, fine);
    fine.dedupe_identical_coverage = true;
    const auto dedup = build_hover_candidates(inst, fine);
    EXPECT_GT(raw.size(), 100u);
    EXPECT_EQ(dedup.size(), 1u);
    // The kept representative is the best-centred one.
    EXPECT_LE(geom::distance(dedup.candidates[0].pos, {100.0, 100.0}),
              fine.delta_m);
}

TEST(HoverCandidates, CapRespectedAndDevicesStillCovered) {
    const auto inst = small_instance(60, 400.0, 11);
    HoverCandidateConfig cfg;
    cfg.delta_m = 10.0;
    cfg.max_candidates = 25;
    const auto set = build_hover_candidates(inst, cfg);
    EXPECT_LE(set.size(), 25u);
    // Every device coverable before the cap stays coverable after it.
    std::set<int> covered;
    for (const auto& c : set.candidates) {
        covered.insert(c.covered.begin(), c.covered.end());
    }
    HoverCandidateConfig uncapped = cfg;
    uncapped.max_candidates = 0;
    const auto full = build_hover_candidates(inst, uncapped);
    std::set<int> coverable;
    for (const auto& c : full.candidates) {
        coverable.insert(c.covered.begin(), c.covered.end());
    }
    EXPECT_EQ(covered, coverable);
}

TEST(HoverCandidates, InflateCoversEdgeDevices) {
    // Device in the region corner: without inflation the best cell centre
    // is inside the region; with inflation centres outside may cover it
    // better. Both must cover the device.
    const auto inst = manual_instance({{{1.0, 1.0}, 100.0}});
    HoverCandidateConfig cfg;
    cfg.delta_m = 10.0;
    cfg.max_candidates = 0;
    cfg.dedupe_identical_coverage = false;
    const auto inside = build_hover_candidates(inst, cfg);
    cfg.inflate_by_coverage = true;
    const auto inflated = build_hover_candidates(inst, cfg);
    EXPECT_GT(inflated.size(), inside.size());
}

TEST(HoverCandidates, NoDevicesNoCandidates) {
    model::Instance inst;
    inst.region = geom::Aabb::of_size(100.0, 100.0);
    inst.depot = {0.0, 0.0};
    const auto set = build_hover_candidates(inst, {});
    EXPECT_EQ(set.size(), 0u);
}

TEST(HoverCandidates, DeltaControlsGranularity) {
    const auto inst = small_instance(30, 300.0, 3);
    HoverCandidateConfig coarse;
    coarse.delta_m = 50.0;
    coarse.max_candidates = 0;
    coarse.dedupe_identical_coverage = false;
    HoverCandidateConfig fine = coarse;
    fine.delta_m = 10.0;
    const auto c = build_hover_candidates(inst, coarse);
    const auto f = build_hover_candidates(inst, fine);
    EXPECT_GT(f.size(), c.size());
}


TEST(HoverCandidates, PositionFilterDropsBlockedCells) {
    const auto inst = manual_instance({{{100.0, 100.0}, 300.0}});
    HoverCandidateConfig cfg;
    cfg.delta_m = 10.0;
    cfg.dedupe_identical_coverage = false;
    cfg.max_candidates = 0;
    const auto all = build_hover_candidates(inst, cfg);
    // Forbid the right half-plane.
    cfg.position_ok = [](const geom::Vec2& p) { return p.x < 100.0; };
    const auto filtered = build_hover_candidates(inst, cfg);
    EXPECT_LT(filtered.size(), all.size());
    EXPECT_GT(filtered.size(), 0u);
    for (const auto& c : filtered.candidates) {
        EXPECT_LT(c.pos.x, 100.0);
    }
}

}  // namespace
}  // namespace uavdc::core
