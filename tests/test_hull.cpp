#include "uavdc/geom/hull.hpp"

#include <gtest/gtest.h>

#include "uavdc/graph/christofides.hpp"
#include "uavdc/util/rng.hpp"

namespace uavdc::geom {
namespace {

TEST(ConvexHull, Degenerate) {
    EXPECT_TRUE(convex_hull(std::vector<Vec2>{}).empty());
    EXPECT_EQ(convex_hull(std::vector<Vec2>{{1.0, 2.0}}).size(), 1u);
    const std::vector<Vec2> two{{0.0, 0.0}, {1.0, 1.0}};
    EXPECT_EQ(convex_hull(two).size(), 2u);
    // Duplicates collapse.
    const std::vector<Vec2> dup{{1.0, 1.0}, {1.0, 1.0}, {1.0, 1.0}};
    EXPECT_EQ(convex_hull(dup).size(), 1u);
}

TEST(ConvexHull, Square) {
    const std::vector<Vec2> pts{{0.0, 0.0}, {1.0, 0.0}, {1.0, 1.0},
                                {0.0, 1.0}, {0.5, 0.5}};
    const auto hull = convex_hull(pts);
    EXPECT_EQ(hull.size(), 4u);
    EXPECT_NEAR(polygon_perimeter(hull), 4.0, 1e-12);
}

TEST(ConvexHull, CollinearPointsDropped) {
    const std::vector<Vec2> pts{
        {0.0, 0.0}, {1.0, 0.0}, {2.0, 0.0}, {2.0, 2.0}, {0.0, 2.0}};
    const auto hull = convex_hull(pts);
    EXPECT_EQ(hull.size(), 4u);  // (1,0) lies on an edge
}

TEST(ConvexHull, CounterClockwiseOrientation) {
    util::Rng rng(4);
    std::vector<Vec2> pts;
    for (int i = 0; i < 50; ++i) {
        pts.push_back({rng.uniform(0.0, 10.0), rng.uniform(0.0, 10.0)});
    }
    const auto hull = convex_hull(pts);
    ASSERT_GE(hull.size(), 3u);
    double area2 = 0.0;
    for (std::size_t i = 0; i < hull.size(); ++i) {
        area2 += hull[i].cross(hull[(i + 1) % hull.size()]);
    }
    EXPECT_GT(area2, 0.0);  // CCW => positive signed area
}

TEST(ConvexHull, ContainsAllInputPoints) {
    util::Rng rng(5);
    std::vector<Vec2> pts;
    for (int i = 0; i < 80; ++i) {
        pts.push_back({rng.uniform(-5.0, 5.0), rng.uniform(-5.0, 5.0)});
    }
    const auto hull = convex_hull(pts);
    for (const auto& p : pts) {
        EXPECT_TRUE(point_in_convex_hull(hull, p));
    }
    EXPECT_FALSE(point_in_convex_hull(hull, {100.0, 100.0}));
}

TEST(ConvexHull, TourLowerBoundProperty) {
    // Any closed tour through all points is at least the hull perimeter.
    for (std::uint64_t seed : {7u, 8u, 9u}) {
        util::Rng rng(seed);
        std::vector<Vec2> pts;
        for (int i = 0; i < 30; ++i) {
            pts.push_back({rng.uniform(0.0, 100.0),
                           rng.uniform(0.0, 100.0)});
        }
        const auto g = graph::DenseGraph::euclidean(pts);
        const auto tour = graph::christofides_tour(g, 0);
        const double tour_len = g.tour_length(tour);
        const double hull_len = polygon_perimeter(convex_hull(pts));
        EXPECT_GE(tour_len, hull_len - 1e-9) << "seed " << seed;
    }
}

TEST(PointInHull, SegmentCase) {
    const std::vector<Vec2> seg{{0.0, 0.0}, {10.0, 0.0}};
    EXPECT_TRUE(point_in_convex_hull(seg, {5.0, 0.0}));
    EXPECT_FALSE(point_in_convex_hull(seg, {5.0, 1.0}));
    EXPECT_FALSE(point_in_convex_hull(seg, {11.0, 0.0}));
}

}  // namespace
}  // namespace uavdc::geom
