#include "uavdc/orienteering/ils.hpp"

#include <gtest/gtest.h>

#include <set>

#include "uavdc/orienteering/exact.hpp"
#include "uavdc/orienteering/greedy.hpp"
#include "uavdc/orienteering/solver.hpp"
#include "uavdc/util/rng.hpp"

namespace uavdc::orienteering {
namespace {

Problem random_problem(int n, double budget, std::uint64_t seed) {
    util::Rng rng(seed);
    std::vector<geom::Vec2> pts;
    for (int i = 0; i < n; ++i) {
        pts.push_back({rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)});
    }
    Problem p;
    p.graph = graph::DenseGraph::euclidean(pts);
    p.prizes.resize(static_cast<std::size_t>(n));
    for (auto& z : p.prizes) z = rng.uniform(1.0, 10.0);
    p.prizes[0] = 0.0;
    p.depot = 0;
    p.budget = budget;
    return p;
}

TEST(Ils, FeasibleAndRooted) {
    for (std::uint64_t seed : {1u, 2u, 3u}) {
        const Problem p = random_problem(30, 200.0, seed);
        const Solution s = solve_ils(p);
        ASSERT_FALSE(s.tour.empty());
        EXPECT_EQ(s.tour.front(), p.depot);
        EXPECT_TRUE(s.feasible(p));
        const std::set<std::size_t> uniq(s.tour.begin(), s.tour.end());
        EXPECT_EQ(uniq.size(), s.tour.size());
        EXPECT_NEAR(s.cost, p.graph.tour_length(s.tour), 1e-9);
    }
}

TEST(Ils, AtLeastAsGoodAsGreedy) {
    for (std::uint64_t seed : {4u, 5u, 6u, 7u}) {
        const Problem p = random_problem(28, 220.0, seed);
        EXPECT_GE(solve_ils(p).prize, solve_greedy(p).prize - 1e-9)
            << "seed " << seed;
    }
}

TEST(Ils, NearExactOnSmallInstances) {
    for (std::uint64_t seed : {8u, 9u}) {
        const Problem p = random_problem(13, 170.0, seed);
        const double opt = solve_exact(p).prize;
        EXPECT_GE(solve_ils(p).prize, 0.9 * opt - 1e-9) << "seed " << seed;
    }
}

TEST(Ils, DeterministicForFixedSeed) {
    const Problem p = random_problem(25, 200.0, 10);
    IlsConfig cfg;
    cfg.seed = 5;
    const Solution a = solve_ils(p, cfg);
    const Solution b = solve_ils(p, cfg);
    EXPECT_EQ(a.tour, b.tour);
}

TEST(Ils, PatienceStopsEarly) {
    const Problem p = random_problem(20, 180.0, 11);
    IlsConfig eager;
    eager.iterations = 1000;
    eager.patience = 2;
    // Just has to terminate quickly and stay feasible.
    const Solution s = solve_ils(p, eager);
    EXPECT_TRUE(s.feasible(p));
}

TEST(Ils, DispatchThroughSolverKind) {
    const Problem p = random_problem(18, 180.0, 12);
    const Solution s = solve(p, SolverKind::kIls);
    EXPECT_TRUE(s.feasible(p));
    EXPECT_EQ(to_string(SolverKind::kIls), "ils");
}

TEST(Ils, ZeroBudgetStaysHome) {
    const Problem p = random_problem(10, 0.0, 13);
    const Solution s = solve_ils(p);
    EXPECT_EQ(s.tour, std::vector<std::size_t>{0});
}

}  // namespace
}  // namespace uavdc::orienteering
