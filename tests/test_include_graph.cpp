#include "uavdc/lint/include_graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

namespace uavdc::lint {
namespace {

namespace fs = std::filesystem;

bool has_id(const std::vector<Finding>& findings, const std::string& id) {
    return std::any_of(findings.begin(), findings.end(),
                       [&](const Finding& f) { return f.id == id; });
}

/// Builds a throwaway source tree under the system temp dir; removed on
/// destruction. Paths handed to analyze_tree are rooted at dir().
class FixtureTree {
  public:
    explicit FixtureTree(const std::string& name)
        : root_(fs::temp_directory_path() / name) {
        fs::remove_all(root_);
        fs::create_directories(root_);
    }
    ~FixtureTree() { fs::remove_all(root_); }

    void write(const std::string& rel, const std::string& contents) {
        const fs::path p = root_ / rel;
        fs::create_directories(p.parent_path());
        std::ofstream(p) << contents;
    }

    [[nodiscard]] std::string dir() const { return root_.generic_string(); }

  private:
    fs::path root_;
};

TEST(IncludeGraph, ModuleResolution) {
    EXPECT_EQ(module_of("src/uavdc/core/evaluate.cpp"), "core");
    EXPECT_EQ(module_of("/abs/repo/src/uavdc/service/request.hpp"),
              "service");
    // Outside the layered library: unconstrained.
    EXPECT_EQ(module_of("tools/uavdc_cli.cpp"), "");
    EXPECT_EQ(module_of("tests/test_lint.cpp"), "");
    EXPECT_EQ(module_of("src/uavdc/unknown_dir/x.cpp"), "");

    EXPECT_EQ(module_of_include("uavdc/geom/vec2.hpp"), "geom");
    EXPECT_EQ(module_of_include("uavdc/model/uav.hpp"), "model");
    EXPECT_EQ(module_of_include("vector"), "");
    EXPECT_EQ(module_of_include("gtest/gtest.h"), "");
}

TEST(IncludeGraph, LayeringTableIsADeclaredDag) {
    const auto& table = layering();
    ASSERT_FALSE(table.empty());
    // Bottom-up property: every allowed dependency appears EARLIER in the
    // table, which makes the declared graph acyclic by construction.
    std::set<std::string> seen;
    for (const auto& rule : table) {
        for (const auto& dep : rule.allowed) {
            EXPECT_TRUE(seen.count(dep) == 1)
                << rule.module << " -> " << dep
                << " is not a downward edge in the declared table";
        }
        seen.insert(rule.module);
    }
    // The contract the ISSUE names explicitly.
    EXPECT_FALSE(edge_allowed("core", "service"));
    EXPECT_FALSE(edge_allowed("core", "io"));
    EXPECT_FALSE(edge_allowed("core", "workload"));
    EXPECT_FALSE(edge_allowed("sim", "core"));
    EXPECT_TRUE(edge_allowed("core", "sim"));
    EXPECT_TRUE(edge_allowed("core", "core"));  // intra-module
    EXPECT_TRUE(edge_allowed("service", "io"));
    EXPECT_FALSE(edge_allowed("util", "geom"));
    EXPECT_FALSE(edge_allowed("nonexistent", "util"));
    // net/ sits on top: it may reach service/ but nothing may reach it.
    EXPECT_TRUE(edge_allowed("net", "service"));
    EXPECT_TRUE(edge_allowed("net", "io"));
    EXPECT_FALSE(edge_allowed("service", "net"));
    EXPECT_FALSE(edge_allowed("core", "net"));
}

TEST(IncludeGraph, CollectIncludesFromScannedLines) {
    const auto lines = scan_lines(
        "#include \"uavdc/geom/vec2.hpp\"\n"
        "#include <vector>\n"
        "  #  include \"uavdc/util/check.hpp\"  // spaced form\n"
        "// #include \"uavdc/service/fake.hpp\" in a comment\n"
        "const char* s = \"#include \\\"uavdc/io/fake.hpp\\\"\";\n");
    const auto incs = collect_includes(lines);
    ASSERT_EQ(incs.size(), 2u);
    EXPECT_EQ(incs[0].line, 1);
    EXPECT_EQ(incs[0].target, "uavdc/geom/vec2.hpp");
    EXPECT_EQ(incs[1].line, 3);
    EXPECT_EQ(incs[1].target, "uavdc/util/check.hpp");
}

TEST(IncludeGraph, LayeringViolationFires) {
    const auto findings = lint_source(
        "src/uavdc/core/fixture.cpp",
        "#include \"uavdc/service/plan_service.hpp\"\n");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].id, "UL010");
    EXPECT_EQ(findings[0].rule, "layering-violation");
    EXPECT_EQ(findings[0].line, 1);
    EXPECT_NE(findings[0].message.find("'core'"), std::string::npos);
    EXPECT_NE(findings[0].message.find("'service'"), std::string::npos);
    // Allowed and intra-module edges are silent; so are files outside the
    // layered library.
    EXPECT_TRUE(lint_source("src/uavdc/core/fixture.cpp",
                            "#include \"uavdc/sim/battery.hpp\"\n"
                            "#include \"uavdc/core/evaluate.hpp\"\n")
                    .empty());
    EXPECT_TRUE(lint_source("tools/fixture.cpp",
                            "#include \"uavdc/service/plan_service.hpp\"\n")
                    .empty());
}

TEST(IncludeGraph, LayeringViolationHonoursSuppression) {
    EXPECT_TRUE(lint_source("src/uavdc/core/fixture.cpp",
                            "// NOLINTNEXTLINE(uavdc-layering-violation): "
                            "transitional, tracked in the migration issue\n"
                            "#include \"uavdc/io/json.hpp\"\n")
                    .empty());
    // Reason-less suppression is rejected like every other rule.
    const auto bare =
        lint_source("src/uavdc/core/fixture.cpp",
                    "#include \"uavdc/io/json.hpp\"  "
                    "// NOLINT(uavdc-layering-violation)\n");
    ASSERT_TRUE(has_id(bare, "UL010"));
    EXPECT_NE(bare[0].message.find("reason"), std::string::npos);
}

TEST(IncludeGraph, FindCyclesOnHandBuiltGraphs) {
    ModuleGraph acyclic;
    acyclic.modules = {"geom", "util"};
    acyclic.edges = {{"geom", "util", "f.hpp", 1, 1}};
    EXPECT_TRUE(find_cycles(acyclic).empty());

    ModuleGraph two;
    two.modules = {"core", "sim"};
    two.edges = {{"core", "sim", "a.cpp", 1, 1},
                 {"sim", "core", "b.cpp", 2, 1}};
    const auto cycles = find_cycles(two);
    ASSERT_EQ(cycles.size(), 1u);
    EXPECT_EQ(cycles[0],
              (std::vector<std::string>{"core", "sim", "core"}));
}

TEST(IncludeGraph, SyntheticThreeModuleCycleIsReported) {
    FixtureTree tree("uavdc_lint_cycle_fixture");
    // model -> geom -> util -> model: each edge is declared-allowed or not,
    // but together they close a module cycle that UL011 must surface with
    // the full path.
    tree.write("src/uavdc/model/a.hpp",
               "#pragma once\n#include \"uavdc/geom/b.hpp\"\n");
    tree.write("src/uavdc/geom/b.hpp",
               "#pragma once\n#include \"uavdc/util/c.hpp\"\n");
    tree.write("src/uavdc/util/c.hpp",
               "#pragma once\n#include \"uavdc/model/a.hpp\"\n");
    const auto analysis = analyze_tree({tree.dir() + "/src"});

    ASSERT_TRUE(has_id(analysis.findings, "UL011"));
    std::string message;
    for (const auto& f : analysis.findings) {
        if (f.id == "UL011") message = f.message;
    }
    // Path starts at the lexicographically smallest module and closes.
    EXPECT_NE(message.find("geom -> util -> model -> geom"),
              std::string::npos)
        << message;
    // Representative include sites are listed for each edge.
    EXPECT_NE(message.find("c.hpp:2"), std::string::npos) << message;
    // util -> model is also a per-file layering violation.
    EXPECT_TRUE(has_id(analysis.findings, "UL010"));
    ASSERT_EQ(find_cycles(analysis.graph).size(), 1u);
}

TEST(IncludeGraph, IncludeCycleHonoursSuppressionAtAnchorSite) {
    // The cycle finding anchors at its first representative include site
    // (the smallest module's outgoing edge), so suppression follows the
    // same NOLINT contract as per-line rules. geom -> util is that anchor
    // for the geom/util/model cycle below.
    FixtureTree tree("uavdc_lint_cycle_nolint_fixture");
    tree.write("src/uavdc/model/a.hpp",
               "#pragma once\n#include \"uavdc/geom/b.hpp\"\n");
    tree.write("src/uavdc/geom/b.hpp",
               "#pragma once\n"
               "// NOLINTNEXTLINE(uavdc-include-cycle): transitional while "
               "the shared type migrates down\n"
               "#include \"uavdc/util/c.hpp\"\n");
    tree.write("src/uavdc/util/c.hpp",
               "#pragma once\n#include \"uavdc/model/a.hpp\"\n");
    const auto suppressed = analyze_tree({tree.dir() + "/src"});
    EXPECT_FALSE(has_id(suppressed.findings, "UL011"));
    // The per-file layering violation (util -> model) is NOT covered by the
    // cycle suppression; it keeps firing.
    EXPECT_TRUE(has_id(suppressed.findings, "UL010"));

    // Reason-less suppression is rejected with an explanation.
    tree.write("src/uavdc/geom/b.hpp",
               "#pragma once\n"
               "#include \"uavdc/util/c.hpp\"  // NOLINT(uavdc-include-cycle)\n");
    const auto bare = analyze_tree({tree.dir() + "/src"});
    ASSERT_TRUE(has_id(bare.findings, "UL011"));
    for (const auto& f : bare.findings) {
        if (f.id != "UL011") continue;
        EXPECT_NE(f.message.find("': reason'"), std::string::npos);
    }
}

TEST(IncludeGraph, SyntheticLayeringViolationViaAnalyzeTree) {
    FixtureTree tree("uavdc_lint_layer_fixture");
    tree.write("src/uavdc/core/planner.cpp",
               "#include \"uavdc/workload/generator.hpp\"\n");
    tree.write("src/uavdc/workload/generator.hpp", "#pragma once\n");
    const auto analysis = analyze_tree({tree.dir() + "/src"});
    ASSERT_TRUE(has_id(analysis.findings, "UL010"));
    EXPECT_FALSE(has_id(analysis.findings, "UL011"));
    // The violating edge is present in the graph and marked red in DOT.
    const std::string dot = to_dot(analysis.graph);
    EXPECT_NE(dot.find("\"core\" -> \"workload\""), std::string::npos);
    EXPECT_NE(dot.find("color=red"), std::string::npos);
}

TEST(IncludeGraph, DotExportShape) {
    ModuleGraph g;
    g.modules = {"core", "sim", "util"};
    g.edges = {{"core", "sim", "a.cpp", 1, 3},
               {"sim", "util", "b.cpp", 1, 2}};
    const std::string dot = to_dot(g);
    EXPECT_EQ(dot.rfind("digraph uavdc_modules {", 0), 0u);
    EXPECT_NE(dot.find("rankdir=BT"), std::string::npos);
    EXPECT_NE(dot.find("\"core\" -> \"sim\" [label=\"3\"]"),
              std::string::npos);
    EXPECT_NE(dot.find("\"sim\" -> \"util\" [label=\"2\"]"),
              std::string::npos);
    // Allowed edges carry no violation styling.
    EXPECT_EQ(dot.find("color=red"), std::string::npos);
    EXPECT_EQ(dot.back(), '\n');
}

// The architecture gate over the real tree: every module edge respects the
// declared table and the graph is acyclic. SelfRunOverSourceTreeIsClean
// already fails on findings; this asserts the graph-level properties
// directly so a regression names the edge, not just a finding count.
TEST(IncludeGraph, RealTreeRespectsLayeringAndIsAcyclic) {
    const std::string root = UAVDC_SOURCE_DIR;
    const auto analysis = analyze_tree({root + "/src"});
    EXPECT_FALSE(analysis.graph.modules.empty());
    for (const auto& e : analysis.graph.edges) {
        EXPECT_TRUE(edge_allowed(e.from, e.to))
            << e.from << " -> " << e.to << " first seen at " << e.file << ":"
            << e.line;
    }
    EXPECT_TRUE(find_cycles(analysis.graph).empty());
    // The load-bearing edges of the PR-8 refactor: sim and core share the
    // model/ cost view instead of including each other.
    const auto has_edge = [&](const std::string& a, const std::string& b) {
        return std::any_of(analysis.graph.edges.begin(),
                           analysis.graph.edges.end(),
                           [&](const ModuleEdge& e) {
                               return e.from == a && e.to == b;
                           });
    };
    EXPECT_TRUE(has_edge("sim", "model"));
    EXPECT_TRUE(has_edge("core", "model"));
    EXPECT_FALSE(has_edge("sim", "core"));
    EXPECT_FALSE(has_edge("core", "conformance"));
}

}  // namespace
}  // namespace uavdc::lint
