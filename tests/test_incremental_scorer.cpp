// Equivalence suite for the incremental scoring engine: the lazy-greedy
// incremental planners must produce *bit-identical* plans (stops, dwells,
// planned_mb, iteration counts) to the retained reference (from-scratch)
// scorer, serially and in parallel, across seeded generator instances —
// plus unit tests for the engine's parts (inverted coverage index,
// edge-local insertion cache, lazy-greedy queue).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory_resource>
#include <string>
#include <utility>
#include <vector>

#include "test_util.hpp"
#include "uavdc/core/algorithm2.hpp"
#include "uavdc/core/algorithm3.hpp"
#include "uavdc/core/benchmark_planner.hpp"
#include "uavdc/core/incremental_scorer.hpp"
#include "uavdc/core/planning_context.hpp"
#include "uavdc/core/tour_builder.hpp"
#include "uavdc/util/rng.hpp"
#include "uavdc/workload/generator.hpp"

namespace uavdc {
namespace {

using core::Algorithm2Config;
using core::Algorithm3Config;
using core::BenchmarkPlannerConfig;
using core::GreedyCoveragePlanner;
using core::InsertionCache;
using core::InvertedCoverageIndex;
using core::LazyGreedyQueue;
using core::PartialCollectionPlanner;
using core::PlanningContext;
using core::PlanResult;
using core::PruneTspPlanner;
using core::RatioRule;
using core::ScoringEngine;
using core::TourBuilder;

// Exact (bitwise) plan comparison — no tolerances anywhere.
void expect_identical(const PlanResult& a, const PlanResult& b,
                      const std::string& what) {
    SCOPED_TRACE(what);
    ASSERT_EQ(a.plan.stops.size(), b.plan.stops.size());
    for (std::size_t i = 0; i < a.plan.stops.size(); ++i) {
        EXPECT_EQ(a.plan.stops[i].pos.x, b.plan.stops[i].pos.x) << "stop " << i;
        EXPECT_EQ(a.plan.stops[i].pos.y, b.plan.stops[i].pos.y) << "stop " << i;
        EXPECT_EQ(a.plan.stops[i].dwell_s, b.plan.stops[i].dwell_s)
            << "stop " << i;
        EXPECT_EQ(a.plan.stops[i].cell_id, b.plan.stops[i].cell_id)
            << "stop " << i;
    }
    EXPECT_EQ(a.stats.planned_mb, b.stats.planned_mb);
    EXPECT_EQ(a.stats.planned_energy_j, b.stats.planned_energy_j);
    EXPECT_EQ(a.stats.iterations, b.stats.iterations);
    EXPECT_EQ(a.stats.candidates, b.stats.candidates);
}

/// Seeded conformance-style instance (same knobs fuzz_conformance turns).
model::Instance fuzz_instance(util::Rng& rng, int min_devices,
                              int max_devices) {
    constexpr workload::Deployment kDeployments[] = {
        workload::Deployment::kUniform,    workload::Deployment::kClustered,
        workload::Deployment::kGridJitter, workload::Deployment::kRing,
        workload::Deployment::kHalton,     workload::Deployment::kPoissonDisk};
    constexpr workload::VolumeModel kVolumes[] = {
        workload::VolumeModel::kUniform, workload::VolumeModel::kExponential,
        workload::VolumeModel::kFixed, workload::VolumeModel::kBimodal};
    workload::GeneratorConfig g;
    g.num_devices =
        static_cast<int>(rng.uniform_int(min_devices, max_devices));
    g.region_w = rng.uniform(150.0, 500.0);
    g.region_h = rng.uniform(150.0, 500.0);
    g.deployment =
        kDeployments[static_cast<std::size_t>(rng.uniform_int(0, 5))];
    g.volumes = kVolumes[static_cast<std::size_t>(rng.uniform_int(0, 3))];
    g.min_mb = rng.uniform(20.0, 150.0);
    g.max_mb = g.min_mb + rng.uniform(50.0, 800.0);
    g.uav.energy_j = rng.uniform(2.0e4, 1.2e5);
    return workload::generate(g, rng.next_u64());
}

core::HoverCandidateConfig hover_cfg(const model::Instance& inst) {
    core::HoverCandidateConfig c;
    c.delta_m = std::max(
        10.0, std::max(inst.region.width(), inst.region.height()) / 15.0);
    return c;
}

// --- Algorithm 2: incremental == reference, serial and parallel, across
// --- retour cadences, ratio rules, and deadline configs.

TEST(IncrementalEquivalence, Algorithm2MatchesReferenceAcrossInstances) {
    util::Rng rng(2026);
    constexpr RatioRule kRules[] = {RatioRule::kPaper, RatioRule::kVolumeOnly,
                                    RatioRule::kPerHover};
    constexpr int kRetours[] = {8, 1, 0, 3};
    for (int trial = 0; trial < 60; ++trial) {
        const auto inst = fuzz_instance(rng, 6, 45);
        const auto ctx = PlanningContext::build(inst, hover_cfg(inst));

        Algorithm2Config cfg;
        cfg.candidates = hover_cfg(inst);
        cfg.ratio_rule = kRules[trial % 3];
        cfg.retour_every = kRetours[trial % 4];
        if (trial % 5 == 0) cfg.max_tour_time_s = 400.0;

        PlanResult results[4];
        int slot = 0;
        for (const auto engine :
             {ScoringEngine::kReference, ScoringEngine::kIncremental}) {
            for (const int threshold : {0, 1}) {  // serial / forced parallel
                cfg.scoring = engine;
                cfg.parallel_threshold = threshold;
                results[slot++] = GreedyCoveragePlanner(cfg).plan(*ctx);
            }
        }
        const std::string tag = "trial " + std::to_string(trial);
        expect_identical(results[0], results[1], tag + " ref serial/par");
        expect_identical(results[0], results[2], tag + " ref vs inc serial");
        expect_identical(results[0], results[3], tag + " ref vs inc par");
        if (::testing::Test::HasFailure()) break;
    }
}

TEST(IncrementalEquivalence, Algorithm2ExactRatioTspMatchesReference) {
    util::Rng rng(99);
    for (int trial = 0; trial < 12; ++trial) {
        const auto inst = fuzz_instance(rng, 5, 16);
        const auto ctx = PlanningContext::build(inst, hover_cfg(inst));

        Algorithm2Config cfg;
        cfg.candidates = hover_cfg(inst);
        cfg.exact_ratio_tsp = true;
        cfg.retour_every = trial % 2 == 0 ? 4 : 0;

        PlanResult results[4];
        int slot = 0;
        for (const auto engine :
             {ScoringEngine::kReference, ScoringEngine::kIncremental}) {
            for (const int threshold : {0, 1}) {
                cfg.scoring = engine;
                cfg.parallel_threshold = threshold;
                results[slot++] = GreedyCoveragePlanner(cfg).plan(*ctx);
            }
        }
        const std::string tag = "tsp trial " + std::to_string(trial);
        expect_identical(results[0], results[1], tag + " ref serial/par");
        expect_identical(results[0], results[2], tag + " ref vs inc serial");
        expect_identical(results[0], results[3], tag + " ref vs inc par");
        if (::testing::Test::HasFailure()) break;
    }
}

// --- Epsilon tier: kIncrementalFast is deterministic run-to-run, and its
// --- outcomes stay within the documented tolerance of the default engine.
// --- (It is NOT bit-identical — the fast reductions reassociate sums —
// --- which is exactly why it is opt-in.)

TEST(IncrementalEquivalence, FastEngineIsDeterministicAndEpsilonClose) {
    util::Rng rng(4242);
    for (int trial = 0; trial < 10; ++trial) {
        const auto inst = fuzz_instance(rng, 6, 40);
        const auto ctx = PlanningContext::build(inst, hover_cfg(inst));
        const std::string tag = "fast trial " + std::to_string(trial);

        Algorithm2Config cfg;
        cfg.candidates = hover_cfg(inst);
        cfg.scoring = ScoringEngine::kIncremental;
        const auto base = GreedyCoveragePlanner(cfg).plan(*ctx);
        cfg.scoring = ScoringEngine::kIncrementalFast;
        const auto fast = GreedyCoveragePlanner(cfg).plan(*ctx);
        expect_identical(fast, GreedyCoveragePlanner(cfg).plan(*ctx),
                         tag + " alg2 rerun");
        EXPECT_NEAR(fast.stats.planned_mb, base.stats.planned_mb,
                    1e-9 * std::max(1.0, base.stats.planned_mb))
            << tag;
        EXPECT_NEAR(fast.stats.planned_energy_j, base.stats.planned_energy_j,
                    1e-9 * std::max(1.0, base.stats.planned_energy_j))
            << tag;

        Algorithm3Config cfg3;
        cfg3.candidates = hover_cfg(inst);
        cfg3.k = 1 + trial % 3;
        cfg3.scoring = ScoringEngine::kIncremental;
        const auto base3 = PartialCollectionPlanner(cfg3).plan(*ctx);
        cfg3.scoring = ScoringEngine::kIncrementalFast;
        const auto fast3 = PartialCollectionPlanner(cfg3).plan(*ctx);
        expect_identical(fast3, PartialCollectionPlanner(cfg3).plan(*ctx),
                         tag + " alg3 rerun");
        EXPECT_NEAR(fast3.stats.planned_mb, base3.stats.planned_mb,
                    1e-9 * std::max(1.0, base3.stats.planned_mb))
            << tag;
        EXPECT_NEAR(fast3.stats.planned_energy_j,
                    base3.stats.planned_energy_j,
                    1e-9 * std::max(1.0, base3.stats.planned_energy_j))
            << tag;
        if (::testing::Test::HasFailure()) break;
    }
}

// --- Algorithm 3 across K values and retour cadences.

TEST(IncrementalEquivalence, Algorithm3MatchesReferenceAcrossInstances) {
    util::Rng rng(777);
    constexpr int kRetours[] = {8, 1, 0};
    for (int trial = 0; trial < 50; ++trial) {
        const auto inst = fuzz_instance(rng, 6, 40);
        const auto ctx = PlanningContext::build(inst, hover_cfg(inst));

        Algorithm3Config cfg;
        cfg.candidates = hover_cfg(inst);
        cfg.k = 1 + trial % 3;
        cfg.retour_every = kRetours[trial % 3];
        if (trial % 4 == 0) cfg.max_tour_time_s = 500.0;

        PlanResult results[4];
        int slot = 0;
        for (const auto engine :
             {ScoringEngine::kReference, ScoringEngine::kIncremental}) {
            for (const int threshold : {0, 1}) {
                cfg.scoring = engine;
                cfg.parallel_threshold = threshold;
                results[slot++] = PartialCollectionPlanner(cfg).plan(*ctx);
            }
        }
        const std::string tag = "alg3 trial " + std::to_string(trial);
        expect_identical(results[0], results[1], tag + " ref serial/par");
        expect_identical(results[0], results[2], tag + " ref vs inc serial");
        expect_identical(results[0], results[3], tag + " ref vs inc par");
        if (::testing::Test::HasFailure()) break;
    }
}

// --- Benchmark (PruneTsp) prune loop.

TEST(IncrementalEquivalence, PruneTspMatchesReferenceAcrossInstances) {
    util::Rng rng(31337);
    int total_prunes = 0;
    for (int trial = 0; trial < 50; ++trial) {
        auto inst = fuzz_instance(rng, 8, 50);
        // Shrink the budget so the prune loop actually runs.
        if (trial % 2 == 0) inst.uav.energy_j *= 0.35;
        const auto ctx = PlanningContext::build(inst, hover_cfg(inst));

        BenchmarkPlannerConfig cfg;
        cfg.reoptimize_after_prune = trial % 3 != 0;
        cfg.scoring = ScoringEngine::kReference;
        const auto ref = PruneTspPlanner(cfg).plan(*ctx);
        cfg.scoring = ScoringEngine::kIncremental;
        const auto inc = PruneTspPlanner(cfg).plan(*ctx);
        expect_identical(ref, inc, "prune trial " + std::to_string(trial));
        total_prunes += ref.stats.iterations;
        if (::testing::Test::HasFailure()) break;
    }
    // The suite must actually exercise the prune loop, not just trivially
    // matching empty prunes.
    EXPECT_GT(total_prunes, 0);
}

// --- InvertedCoverageIndex: decrement targeting vs brute force.

TEST(InvertedCoverageIndex, MatchesBruteForceMembership) {
    const auto inst = testing::small_instance(30, 250.0, 11);
    const auto ctx = PlanningContext::build(inst, hover_cfg(inst));
    const auto& cands = ctx->candidates();
    const InvertedCoverageIndex index(cands, inst.devices.size());
    ASSERT_EQ(index.num_devices(), inst.devices.size());

    for (std::size_t v = 0; v < inst.devices.size(); ++v) {
        std::vector<std::int32_t> expected;
        for (std::size_t j = 0; j < cands.candidates.size(); ++j) {
            for (const int dv : cands.candidates[j].covered) {
                if (static_cast<std::size_t>(dv) == v) {
                    expected.push_back(static_cast<std::int32_t>(j));
                }
            }
        }
        const auto got = index.covering(v);
        ASSERT_EQ(got.size(), expected.size()) << "device " << v;
        for (std::size_t t = 0; t < expected.size(); ++t) {
            EXPECT_EQ(got[t], expected[t]) << "device " << v;
        }
        // Sorted ascending — planners rely on deterministic dirty order.
        for (std::size_t t = 1; t < got.size(); ++t) {
            EXPECT_LT(got[t - 1], got[t]);
        }
    }

    // Covering a device must dirty exactly the candidates whose coverage
    // contains it: every candidate listed loses gain, nobody else does.
    const std::size_t device = 0;
    for (std::size_t j = 0; j < cands.candidates.size(); ++j) {
        const auto& cov = cands.candidates[j].covered;
        const bool listed = [&] {
            for (const auto cj : index.covering(device)) {
                if (static_cast<std::size_t>(cj) == j) return true;
            }
            return false;
        }();
        const bool contains = [&] {
            for (const int dv : cov) {
                if (static_cast<std::size_t>(dv) == device) return true;
            }
            return false;
        }();
        EXPECT_EQ(listed, contains) << "candidate " << j;
    }
}

// --- InsertionCache: exactness after every insert, straddler handling,
// --- and the dirty-bit fallback after reoptimize().

TEST(InsertionCache, StaysExactUnderInsertions) {
    util::Rng rng(5);
    std::vector<geom::Vec2> points;
    for (int i = 0; i < 40; ++i) {
        points.push_back({rng.uniform(0.0, 300.0), rng.uniform(0.0, 300.0)});
    }
    TourBuilder tour({0.0, 0.0});
    InsertionCache cache(tour, points);
    EXPECT_TRUE(cache.dirty());
    cache.rebuild_all(false);
    EXPECT_FALSE(cache.dirty());

    std::pmr::vector<std::size_t> changed;
    for (int step = 0; step < 25; ++step) {
        // Verify every active entry against a fresh scan (bitwise).
        for (std::size_t i = 0; i < points.size(); ++i) {
            if (!cache.active(i)) continue;
            const auto fresh = tour.cheapest_insertion(points[i]);
            EXPECT_EQ(cache.get(i).position, fresh.position)
                << "step " << step << " cand " << i;
            EXPECT_EQ(cache.get(i).delta_m, fresh.delta_m)
                << "step " << step << " cand " << i;
        }
        // Insert the next point (round-robin) and maintain the cache.
        const auto next = static_cast<std::size_t>(step);
        const auto ins = cache.get(next);
        tour.insert(points[next], static_cast<int>(next), ins);
        cache.deactivate(next);
        changed.clear();
        cache.on_insert(ins, changed);
    }
}

TEST(InsertionCache, ReoptimizeRequiresRebuild) {
    util::Rng rng(17);
    std::vector<geom::Vec2> points;
    for (int i = 0; i < 20; ++i) {
        points.push_back({rng.uniform(0.0, 200.0), rng.uniform(0.0, 200.0)});
    }
    TourBuilder tour({0.0, 0.0});
    InsertionCache cache(tour, points);
    cache.rebuild_all(false);
    std::pmr::vector<std::size_t> changed;
    for (std::size_t i = 0; i < 8; ++i) {
        const auto ins = cache.get(i);
        tour.insert(points[i], static_cast<int>(i), ins);
        cache.deactivate(i);
        cache.on_insert(ins, changed);
    }
    tour.reoptimize();
    cache.invalidate_all();
    EXPECT_TRUE(cache.dirty());
    cache.rebuild_all(true);  // parallel rebuild path
    EXPECT_FALSE(cache.dirty());
    for (std::size_t i = 8; i < points.size(); ++i) {
        const auto fresh = tour.cheapest_insertion(points[i]);
        EXPECT_EQ(cache.get(i).position, fresh.position) << "cand " << i;
        EXPECT_EQ(cache.get(i).delta_m, fresh.delta_m) << "cand " << i;
    }
}

TEST(InsertionCache, ReportsChangedCandidates) {
    // Depot at origin, two clusters; inserting a stop near cluster A must
    // report the A candidates (their delta improves via the new edges).
    TourBuilder tour({0.0, 0.0});
    std::vector<geom::Vec2> points{{100.0, 0.0}, {100.0, 5.0}, {0.0, 100.0}};
    InsertionCache cache(tour, points);
    cache.rebuild_all(false);
    // Empty tour: every delta is the out-and-back 2 * d(depot, p).
    EXPECT_EQ(cache.get(0).delta_m, 2.0 * geom::distance({0.0, 0.0}, points[0]));

    const TourBuilder::Insertion ins = tour.cheapest_insertion({100.0, 2.0});
    tour.insert({100.0, 2.0}, 99, ins);
    std::pmr::vector<std::size_t> changed;
    cache.on_insert(ins, changed);
    // All three straddle the (empty-tour) position-0 edge; all reported and
    // all exact afterwards.
    ASSERT_EQ(changed.size(), 3u);
    for (std::size_t i = 0; i < points.size(); ++i) {
        const auto fresh = tour.cheapest_insertion(points[i]);
        EXPECT_EQ(cache.get(i).position, fresh.position);
        EXPECT_EQ(cache.get(i).delta_m, fresh.delta_m);
    }
}

// --- LazyGreedyQueue: deterministic tie-break, staleness, both policies.

TEST(LazyGreedyQueue, TieBreaksOnSmallerIndex) {
    LazyGreedyQueue q(4);
    q.update(2, 5.0);
    q.update(0, 5.0);
    q.update(1, 5.0);
    q.update(3, 7.0);
    int evals = 0;
    const auto pick = q.pop_best(true, [&](std::size_t i) {
        ++evals;
        return std::pair<double, bool>{i == 3 ? 7.0 : 5.0, i != 3};
    });
    ASSERT_TRUE(pick.found);
    // 3 has the top key but is unselectable; among the 5.0 tie the smallest
    // index must win.
    EXPECT_EQ(pick.index, 0u);
    EXPECT_EQ(pick.exact, 5.0);
    EXPECT_EQ(evals, 2);  // 3 (rejected) then 0 (accepted; 1 and 2 pruned)
}

TEST(LazyGreedyQueue, StaleEntriesAreSkipped) {
    LazyGreedyQueue q(3);
    q.update(0, 10.0);
    q.update(1, 4.0);
    q.update(0, 1.0);  // 10.0 entry is now stale
    const auto pick = q.pop_best(true, [&](std::size_t i) {
        return std::pair<double, bool>{q.key(i), true};
    });
    ASSERT_TRUE(pick.found);
    EXPECT_EQ(pick.index, 1u);
    EXPECT_EQ(pick.exact, 4.0);
}

TEST(LazyGreedyQueue, PolicyADropsUnselectableUntilUpdate) {
    LazyGreedyQueue q(2);
    q.update(0, 9.0);
    q.update(1, 3.0);
    int evals_of_0 = 0;
    auto eval = [&](std::size_t i) {
        if (i == 0) ++evals_of_0;
        return std::pair<double, bool>{q.key(i), i != 0};
    };
    EXPECT_EQ(q.pop_best(true, eval).index, 1u);
    EXPECT_EQ(evals_of_0, 1);
    // 0 was dropped: the next pop must not re-evaluate it...
    q.update(1, 3.0);
    EXPECT_EQ(q.pop_best(true, eval).index, 1u);
    EXPECT_EQ(evals_of_0, 1);
    // ...until an explicit update re-enqueues it.
    q.update(0, 9.0);
    q.update(1, 3.0);
    EXPECT_EQ(q.pop_best(true, eval).index, 1u);
    EXPECT_EQ(evals_of_0, 2);
}

TEST(LazyGreedyQueue, PolicyBReenqueuesEvaluated) {
    LazyGreedyQueue q(2);
    q.update(0, 9.0);  // upper bound; exact is lower
    q.update(1, 3.0);
    int evals_of_0 = 0;
    auto eval = [&](std::size_t i) {
        if (i == 0) ++evals_of_0;
        // 0's exact score is 1.0 (bound was loose); 1's is exact.
        return std::pair<double, bool>{i == 0 ? 1.0 : 3.0, true};
    };
    EXPECT_EQ(q.pop_best(false, eval).index, 1u);
    EXPECT_EQ(evals_of_0, 1);
    // Policy B keeps 0 queued under its bound: evaluated again next round.
    q.update(1, 3.0);
    EXPECT_EQ(q.pop_best(false, eval).index, 1u);
    EXPECT_EQ(evals_of_0, 2);
}

TEST(LazyGreedyQueue, DeactivatedNeverReturned) {
    LazyGreedyQueue q(2);
    q.update(0, 9.0);
    q.update(1, 3.0);
    q.deactivate(0);
    const auto pick = q.pop_best(true, [&](std::size_t i) {
        return std::pair<double, bool>{q.key(i), true};
    });
    ASSERT_TRUE(pick.found);
    EXPECT_EQ(pick.index, 1u);
    EXPECT_FALSE(q.active(0));
    q.deactivate(1);
    EXPECT_FALSE(q.pop_best(true, [&](std::size_t) {
                      return std::pair<double, bool>{0.0, true};
                  }).found);
}

TEST(LazyGreedyQueue, RebuildMatchesClearPlusUpdate) {
    // rebuild() is the bulk form of clear() + update(): stale entries from
    // before the rebuild must never surface, and pops come out in the same
    // (key desc, index asc) order as the incremental form.
    LazyGreedyQueue bulk(5);
    LazyGreedyQueue one_by_one(5);
    for (std::size_t i = 0; i < 5; ++i) {
        bulk.update(i, 100.0 + static_cast<double>(i));
        one_by_one.update(i, 100.0 + static_cast<double>(i));
    }
    const std::vector<std::pair<std::size_t, double>> items = {
        {0, 2.0}, {1, 7.0}, {2, 7.0}, {4, 1.0}};
    bulk.rebuild(items);
    one_by_one.clear();
    for (const auto& [i, key] : items) one_by_one.update(i, key);
    // Candidate 3 was dropped by both; the old key-103 entry must be stale.
    auto eval = [&](LazyGreedyQueue& q) {
        return [&q](std::size_t i) {
            return std::pair<double, bool>{q.key(i), true};
        };
    };
    for (int round = 0; round < 4; ++round) {
        const auto a = bulk.pop_best(true, eval(bulk));
        const auto b = one_by_one.pop_best(true, eval(one_by_one));
        ASSERT_TRUE(a.found);
        ASSERT_TRUE(b.found);
        EXPECT_EQ(a.index, b.index);
        EXPECT_EQ(a.exact, b.exact);
        bulk.deactivate(a.index);
        one_by_one.deactivate(b.index);
    }
    EXPECT_FALSE(bulk.pop_best(true, eval(bulk)).found);
    EXPECT_FALSE(one_by_one.pop_best(true, eval(one_by_one)).found);
}

TEST(InsertionCache, RunnerUpSurvivesRepeatedStraddles) {
    // Points clustered near one tour edge so successive insertions keep
    // splitting the edge the cached best (and then its runner-up) sit on —
    // exercising both the O(1) runner-up promotion and the rescan fallback
    // when the runner-up has been consumed.
    util::Rng rng(99);
    TourBuilder tour({0.0, 0.0});
    std::vector<geom::Vec2> pts;
    for (int i = 0; i < 30; ++i) {
        pts.push_back({rng.uniform(40.0, 60.0), rng.uniform(-5.0, 5.0)});
    }
    for (int i = 0; i < 10; ++i) {
        pts.push_back({rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)});
    }
    InsertionCache cache(tour, pts);
    cache.rebuild_all(false);
    std::pmr::vector<std::size_t> changed;
    std::vector<char> used(pts.size(), 0);
    for (int step = 0; step < 25; ++step) {
        // Insert the clustered points first to maximise straddling.
        std::size_t pick = pts.size();
        for (std::size_t i = 0; i < pts.size(); ++i) {
            if (used[i] == 0) {
                pick = i;
                break;
            }
        }
        ASSERT_LT(pick, pts.size());
        const auto ins = cache.get(pick);
        tour.insert(pts[pick], static_cast<int>(pick), ins);
        used[pick] = 1;
        cache.deactivate(pick);
        changed.clear();
        cache.on_insert(ins, changed);
        for (std::size_t i = 0; i < pts.size(); ++i) {
            if (used[i] != 0) continue;
            const auto fresh = tour.cheapest_insertion(pts[i]);
            const auto& got = cache.get(i);
            ASSERT_EQ(got.position, fresh.position)
                << "step " << step << " candidate " << i;
            ASSERT_EQ(got.delta_m, fresh.delta_m)
                << "step " << step << " candidate " << i;
        }
    }
}

TEST(TourBuilder, CheapestInsertion2MatchesSingleAndRunnerUp) {
    util::Rng rng(7);
    TourBuilder tour({0.0, 0.0});
    for (int i = 0; i < 12; ++i) {
        const geom::Vec2 p{rng.uniform(0.0, 200.0), rng.uniform(0.0, 200.0)};
        tour.insert(p, i, tour.cheapest_insertion(p));
    }
    // The maintained per-edge lengths must match the from-scratch oracle
    // bitwise — scan_edges subtracts edge_len_[i] where the scalar scan
    // recomputed distance(a, b).
    const auto edge_len = tour.edge_lengths();
    ASSERT_EQ(edge_len.size(), tour.size() + 1);
    ASSERT_EQ(tour.edge_len().size(), edge_len.size());
    for (std::size_t i = 0; i < edge_len.size(); ++i) {
        EXPECT_EQ(tour.edge_len()[i], edge_len[i]) << "edge " << i;
    }
    for (int t = 0; t < 50; ++t) {
        const geom::Vec2 q{rng.uniform(0.0, 200.0), rng.uniform(0.0, 200.0)};
        const auto single = tour.cheapest_insertion(q);
        const auto both = tour.cheapest_insertion2(q);
        EXPECT_EQ(both.best.position, single.position);
        EXPECT_EQ(both.best.delta_m, single.delta_m);
        ASSERT_TRUE(both.has_second);
        // The runner-up is what a fresh scan picks with the best edge gone:
        // strictly worse or equal delta, never the same position.
        EXPECT_NE(both.second.position, both.best.position);
        EXPECT_GE(both.second.delta_m, both.best.delta_m);
    }
    // Empty tour: single pseudo-edge, no runner-up.
    TourBuilder empty({0.0, 0.0});
    const auto e = empty.cheapest_insertion2({3.0, 4.0});
    EXPECT_FALSE(e.has_second);
    EXPECT_EQ(e.best.delta_m, 10.0);
    EXPECT_TRUE(empty.edge_lengths().empty());
    EXPECT_TRUE(empty.edge_len().empty());
}

}  // namespace
}  // namespace uavdc
