#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "test_util.hpp"
#include "uavdc/core/algorithm1.hpp"
#include "uavdc/core/algorithm2.hpp"
#include "uavdc/core/algorithm3.hpp"
#include "uavdc/core/benchmark_planner.hpp"
#include "uavdc/core/evaluate.hpp"
#include "uavdc/sim/simulator.hpp"
#include "uavdc/workload/presets.hpp"

namespace uavdc {
namespace {

/// Planner factory for the cross-product suites.
enum class Algo { kAlg1, kAlg2, kAlg3K2, kAlg3K4, kBenchmark };

std::string algo_name(Algo a) {
    switch (a) {
        case Algo::kAlg1:
            return "alg1";
        case Algo::kAlg2:
            return "alg2";
        case Algo::kAlg3K2:
            return "alg3k2";
        case Algo::kAlg3K4:
            return "alg3k4";
        case Algo::kBenchmark:
            return "benchmark";
    }
    return "?";
}

std::unique_ptr<core::Planner> make_planner(Algo a, double delta) {
    switch (a) {
        case Algo::kAlg1: {
            core::Algorithm1Config cfg;
            cfg.candidates.delta_m = delta;
            cfg.grasp.iterations = 4;
            return std::make_unique<core::GridOrienteeringPlanner>(cfg);
        }
        case Algo::kAlg2: {
            core::Algorithm2Config cfg;
            cfg.candidates.delta_m = delta;
            return std::make_unique<core::GreedyCoveragePlanner>(cfg);
        }
        case Algo::kAlg3K2:
        case Algo::kAlg3K4: {
            core::Algorithm3Config cfg;
            cfg.candidates.delta_m = delta;
            cfg.k = a == Algo::kAlg3K2 ? 2 : 4;
            return std::make_unique<core::PartialCollectionPlanner>(cfg);
        }
        case Algo::kBenchmark:
            return std::make_unique<core::PruneTspPlanner>();
    }
    return nullptr;
}

// ---------------------------------------------------------------------------
// Every planner x several workloads x seeds: plans are energy-feasible, the
// simulator completes them, and sim == closed-form evaluation.
// ---------------------------------------------------------------------------

using PlannerCase = std::tuple<Algo, int /*scenario*/, int /*seed*/>;

class PlannerSimSweep : public ::testing::TestWithParam<PlannerCase> {};

model::Instance scenario_instance(int scenario, int seed) {
    workload::GeneratorConfig cfg;
    switch (scenario) {
        case 0:
            cfg = workload::paper_scaled(0.3);
            break;
        case 1:
            cfg = workload::smart_city();
            cfg.num_devices = 60;
            cfg.region_w = cfg.region_h = 400.0;
            break;
        default:
            cfg = workload::farm_monitoring();
            cfg.num_devices = 50;
            cfg.region_w = cfg.region_h = 350.0;
            break;
    }
    cfg.uav.energy_j = 8.0e4;
    return workload::generate(cfg, static_cast<std::uint64_t>(seed));
}

TEST_P(PlannerSimSweep, FeasibleAndSimConsistent) {
    const auto [algo, scenario, seed] = GetParam();
    const auto inst = scenario_instance(scenario, seed);
    auto planner = make_planner(algo, 25.0);
    const auto res = planner->plan(inst);

    EXPECT_TRUE(res.plan.feasible(inst.depot, inst.uav, 1e-6))
        << algo_name(algo);

    const auto ev = core::evaluate_plan(inst, res.plan);
    sim::SimConfig scfg;
    scfg.record_trace = false;
    const auto rep = sim::Simulator(scfg).run(inst, res.plan);
    EXPECT_TRUE(rep.completed) << algo_name(algo);
    EXPECT_FALSE(rep.battery_depleted) << algo_name(algo);
    EXPECT_NEAR(rep.collected_mb, ev.collected_mb, 1e-6) << algo_name(algo);
    EXPECT_NEAR(rep.energy_used_j, ev.energy_j, 1e-6) << algo_name(algo);
    EXPECT_LE(rep.energy_used_j, inst.uav.energy_j + 1e-6)
        << algo_name(algo);
    // Claimed volume never overstated.
    EXPECT_GE(ev.collected_mb, res.stats.planned_mb - 1e-6)
        << algo_name(algo);
}

INSTANTIATE_TEST_SUITE_P(
    AllPlanners, PlannerSimSweep,
    ::testing::Combine(::testing::Values(Algo::kAlg1, Algo::kAlg2,
                                         Algo::kAlg3K2, Algo::kAlg3K4,
                                         Algo::kBenchmark),
                       ::testing::Values(0, 1, 2),
                       ::testing::Values(1, 2)),
    [](const ::testing::TestParamInfo<PlannerCase>& info) {
        return algo_name(std::get<0>(info.param)) + "_scenario" +
               std::to_string(std::get<1>(info.param)) + "_seed" +
               std::to_string(std::get<2>(info.param));
    });

// ---------------------------------------------------------------------------
// Lemma 1 property sweep: the auxiliary graph is metric for random
// instances and grid resolutions.
// ---------------------------------------------------------------------------

class MetricSweep
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(MetricSweep, AuxiliaryGraphSatisfiesTriangleInequality) {
    const auto [seed, delta] = GetParam();
    const auto inst = testing::small_instance(
        18, 250.0, static_cast<std::uint64_t>(seed));
    core::HoverCandidateConfig ccfg;
    ccfg.delta_m = delta;
    ccfg.max_candidates = 40;  // keep the O(n^3) check quick
    const auto cands = core::build_hover_candidates(inst, ccfg);
    const auto problem =
        core::GridOrienteeringPlanner::build_auxiliary_problem(inst, cands);
    EXPECT_LE(problem.graph.max_triangle_violation(), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndDeltas, MetricSweep,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values(15.0, 25.0, 40.0)));

// ---------------------------------------------------------------------------
// Eq. 4-5 property: P(s_{j,k}) and t(s_{j,k}) are monotone in k, and the
// K-th virtual location collects the full coverage volume.
// ---------------------------------------------------------------------------

class VirtualLocationMonotonicity : public ::testing::TestWithParam<int> {};

TEST_P(VirtualLocationMonotonicity, PrizeAndDwellIncreaseWithK) {
    const int K = GetParam();
    const auto inst = testing::small_instance(25, 200.0, 77);
    core::HoverCandidateConfig ccfg;
    ccfg.delta_m = 20.0;
    const auto cands = core::build_hover_candidates(inst, ccfg);
    ASSERT_GT(cands.size(), 0u);
    const double bw = inst.uav.bandwidth_mbps;
    for (const auto& c : cands.candidates) {
        double prev_p = -1.0, prev_t = -1.0;
        for (int k = 1; k <= K; ++k) {
            const double t_k = static_cast<double>(k) * c.dwell_s /
                               static_cast<double>(K);
            // Eq. 4 with full (initial) volumes.
            double p_k = 0.0;
            for (int v : c.covered) {
                p_k += std::min(
                    inst.devices[static_cast<std::size_t>(v)].data_mb,
                    bw * t_k);
            }
            EXPECT_GE(p_k, prev_p - 1e-9);
            EXPECT_GT(t_k, prev_t);
            prev_p = p_k;
            prev_t = t_k;
            if (k == K) {
                EXPECT_NEAR(p_k, c.award_mb, 1e-6)
                    << "full dwell must collect the full award";
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Ks, VirtualLocationMonotonicity,
                         ::testing::Values(1, 2, 4, 8));

// ---------------------------------------------------------------------------
// Energy-budget monotonicity across planners (aggregate over seeds).
// ---------------------------------------------------------------------------

class EnergySweep : public ::testing::TestWithParam<Algo> {};

TEST_P(EnergySweep, CollectionGrowsWithBudgetOnAverage) {
    const Algo algo = GetParam();
    double prev = -1.0;
    for (double energy : {2.0e4, 5.0e4, 1.0e5}) {
        double total = 0.0;
        for (std::uint64_t seed : {51u, 52u, 53u}) {
            auto inst = testing::small_instance(30, 320.0, seed);
            inst.uav.energy_j = energy;
            auto planner = make_planner(algo, 25.0);
            total += core::evaluate_plan(inst, planner->plan(inst).plan)
                         .collected_mb;
        }
        EXPECT_GE(total, prev - 1e-6)
            << algo_name(algo) << " at E=" << energy;
        prev = total;
    }
}

INSTANTIATE_TEST_SUITE_P(AllPlanners, EnergySweep,
                         ::testing::Values(Algo::kAlg1, Algo::kAlg2,
                                           Algo::kAlg3K2, Algo::kBenchmark),
                         [](const ::testing::TestParamInfo<Algo>& info) {
                             return algo_name(info.param);
                         });

// ---------------------------------------------------------------------------
// End-to-end: disjoint-coverage selection for Alg 1 really is disjoint.
// ---------------------------------------------------------------------------

TEST(Algorithm1Disjoint, SelectedCoverageSetsPairwiseDisjoint) {
    const auto inst = testing::small_instance(40, 300.0, 88);
    core::HoverCandidateConfig ccfg;
    ccfg.delta_m = 15.0;
    auto cands = core::build_hover_candidates(inst, ccfg);
    const auto disjoint = core::GridOrienteeringPlanner::select_disjoint(
        std::move(cands), inst.num_devices());
    std::vector<int> hits(inst.num_devices(), 0);
    for (const auto& c : disjoint.candidates) {
        for (int v : c.covered) ++hits[static_cast<std::size_t>(v)];
    }
    for (int h : hits) EXPECT_LE(h, 1);
}

TEST(Algorithm1Disjoint, PlannedEqualsEvaluatedOnFeasiblePlans) {
    // With disjoint coverage, the orienteering prize is exactly the volume
    // collected.
    for (std::uint64_t seed : {61u, 62u, 63u}) {
        const auto inst = testing::small_instance(30, 300.0, seed);
        core::Algorithm1Config cfg;
        cfg.candidates.delta_m = 20.0;
        cfg.grasp.iterations = 4;
        core::GridOrienteeringPlanner planner(cfg);
        const auto res = planner.plan(inst);
        const auto ev = core::evaluate_plan(inst, res.plan);
        EXPECT_NEAR(ev.collected_mb, res.stats.planned_mb, 1e-6)
            << "seed " << seed;
    }
}

}  // namespace
}  // namespace uavdc
