#include "uavdc/io/json.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace uavdc::io {
namespace {

TEST(Json, ParsePrimitives) {
    EXPECT_TRUE(Json::parse("null").is_null());
    EXPECT_EQ(Json::parse("true").as_bool(), true);
    EXPECT_EQ(Json::parse("false").as_bool(), false);
    EXPECT_DOUBLE_EQ(Json::parse("42").as_number(), 42.0);
    EXPECT_DOUBLE_EQ(Json::parse("-3.5e2").as_number(), -350.0);
    EXPECT_EQ(Json::parse("\"hi\"").as_string(), "hi");
}

TEST(Json, ParseWhitespaceTolerant) {
    const Json v = Json::parse("  {\n \"a\" : [ 1 , 2 ] }\t");
    EXPECT_EQ(v.at("a").as_array().size(), 2u);
}

TEST(Json, ParseNested) {
    const Json v = Json::parse(
        R"({"a": {"b": [1, {"c": "deep"}]}, "d": null})");
    EXPECT_EQ(v.at("a").at("b").as_array()[1].at("c").as_string(), "deep");
    EXPECT_TRUE(v.at("d").is_null());
}

TEST(Json, ParseEscapes) {
    const Json v = Json::parse(R"("line\nbreak \"q\" back\\slash A")");
    EXPECT_EQ(v.as_string(), "line\nbreak \"q\" back\\slash A");
}

TEST(Json, ParseUnicodeEscapeMultibyte) {
    const Json v = Json::parse(R"("é中")");
    EXPECT_EQ(v.as_string(), "\xC3\xA9\xE4\xB8\xAD");  // é, 中 in UTF-8
}

TEST(Json, ParseErrors) {
    EXPECT_THROW(Json::parse(""), std::runtime_error);
    EXPECT_THROW(Json::parse("{"), std::runtime_error);
    EXPECT_THROW(Json::parse("[1,]"), std::runtime_error);
    EXPECT_THROW(Json::parse("{\"a\" 1}"), std::runtime_error);
    EXPECT_THROW(Json::parse("tru"), std::runtime_error);
    EXPECT_THROW(Json::parse("1 2"), std::runtime_error);
    EXPECT_THROW(Json::parse("\"unterminated"), std::runtime_error);
    EXPECT_THROW(Json::parse("nul"), std::runtime_error);
    EXPECT_THROW(Json::parse("--1"), std::runtime_error);
}

TEST(Json, TypeMismatchThrows) {
    const Json v = Json::parse("[1]");
    EXPECT_THROW((void)v.as_object(), std::runtime_error);
    EXPECT_THROW((void)v.as_string(), std::runtime_error);
    EXPECT_THROW((void)v.at("x"), std::runtime_error);
    const Json obj = Json::parse("{}");
    EXPECT_THROW((void)obj.at("missing"), std::runtime_error);
}

TEST(Json, Fallbacks) {
    const Json v = Json::parse(R"({"n": 5, "s": "x", "b": true})");
    EXPECT_DOUBLE_EQ(v.number_or("n", 0.0), 5.0);
    EXPECT_DOUBLE_EQ(v.number_or("missing", 7.5), 7.5);
    EXPECT_EQ(v.string_or("s", ""), "x");
    EXPECT_EQ(v.string_or("missing", "dflt"), "dflt");
    EXPECT_TRUE(v.bool_or("b", false));
    EXPECT_FALSE(v.bool_or("missing", false));
}

TEST(Json, BuildWithOperatorBracket) {
    Json doc;
    doc["name"] = "test";
    doc["count"] = 3;
    doc["nested"]["x"] = 1.5;
    EXPECT_EQ(doc.at("name").as_string(), "test");
    EXPECT_DOUBLE_EQ(doc.at("nested").at("x").as_number(), 1.5);
}

TEST(Json, DumpCompactAndPretty) {
    Json doc;
    doc["b"] = 2;
    doc["a"] = Json(Json::Array{Json(1), Json("x")});
    const std::string compact = doc.dump();
    EXPECT_EQ(compact, R"({"a":[1,"x"],"b":2})");
    const std::string pretty = doc.dump(2);
    EXPECT_NE(pretty.find("\n  \"a\": [\n"), std::string::npos);
}

TEST(Json, DumpIntegersWithoutDecimals) {
    EXPECT_EQ(Json(42).dump(), "42");
    EXPECT_EQ(Json(-3.0).dump(), "-3");
    EXPECT_EQ(Json(2.5).dump(), "2.5");
}

TEST(Json, RoundTripPreservesValue) {
    const std::string src =
        R"({"arr":[1,2.5,"s",true,null],"nested":{"k":-1e-3},"str":"a\"b"})";
    const Json first = Json::parse(src);
    const Json second = Json::parse(first.dump());
    EXPECT_EQ(first, second);
}

TEST(Json, RoundTripDoublesExactly) {
    const double vals[] = {0.1, 1.0 / 3.0, 1e-300, 12345.6789, -0.0};
    for (double v : vals) {
        const Json parsed = Json::parse(Json(v).dump());
        EXPECT_DOUBLE_EQ(parsed.as_number(), v);
    }
}

TEST(JsonFile, SaveAndLoad) {
    const std::string path = ::testing::TempDir() + "/uavdc_json_test.json";
    Json doc;
    doc["k"] = "v";
    save_json_file(path, doc);
    const Json loaded = load_json_file(path);
    EXPECT_EQ(loaded, doc);
    std::remove(path.c_str());
}

TEST(JsonFile, LoadMissingThrows) {
    EXPECT_THROW(load_json_file("/nonexistent/file.json"),
                 std::runtime_error);
}

}  // namespace
}  // namespace uavdc::io
