#include "uavdc/geom/kmeans.hpp"

#include <gtest/gtest.h>

#include <set>

#include "uavdc/util/rng.hpp"

namespace uavdc::geom {
namespace {

std::vector<Vec2> blobs(int per_blob, std::uint64_t seed) {
    util::Rng rng(seed);
    const Vec2 centers[] = {{0.0, 0.0}, {100.0, 0.0}, {50.0, 100.0}};
    std::vector<Vec2> pts;
    for (const auto& c : centers) {
        for (int i = 0; i < per_blob; ++i) {
            pts.push_back({rng.normal(c.x, 3.0), rng.normal(c.y, 3.0)});
        }
    }
    return pts;
}

TEST(KMeans, EmptyInput) {
    const auto res = kmeans(std::vector<Vec2>{}, 3);
    EXPECT_TRUE(res.centroids.empty());
    EXPECT_TRUE(res.assignment.empty());
}

TEST(KMeans, InvalidArguments) {
    const std::vector<Vec2> pts{{0.0, 0.0}};
    EXPECT_THROW((void)kmeans(pts, 0), std::invalid_argument);
    const std::vector<double> bad_w{1.0, 2.0};
    EXPECT_THROW((void)kmeans(pts, 1, bad_w), std::invalid_argument);
}

TEST(KMeans, SingleCluster) {
    const auto pts = blobs(10, 1);
    const auto res = kmeans(pts, 1);
    ASSERT_EQ(res.centroids.size(), 1u);
    // Centroid of everything = mean.
    Vec2 mean{};
    for (const auto& p : pts) mean += p;
    mean /= static_cast<double>(pts.size());
    EXPECT_NEAR(res.centroids[0].x, mean.x, 1e-6);
    EXPECT_NEAR(res.centroids[0].y, mean.y, 1e-6);
}

TEST(KMeans, RecoversWellSeparatedBlobs) {
    const auto pts = blobs(20, 2);
    const auto res = kmeans(pts, 3);
    ASSERT_EQ(res.centroids.size(), 3u);
    // Each true centre has a centroid within ~5 m.
    for (const Vec2 truth : {Vec2{0.0, 0.0}, Vec2{100.0, 0.0},
                             Vec2{50.0, 100.0}}) {
        double best = 1e18;
        for (const auto& c : res.centroids) {
            best = std::min(best, distance(c, truth));
        }
        EXPECT_LT(best, 5.0);
    }
    // All 3 clusters non-empty, sizes sum to n.
    int total = 0;
    for (int s : res.cluster_sizes) {
        EXPECT_GT(s, 0);
        total += s;
    }
    EXPECT_EQ(total, static_cast<int>(pts.size()));
}

TEST(KMeans, AssignmentIsNearestCentroid) {
    const auto pts = blobs(15, 3);
    const auto res = kmeans(pts, 3);
    for (std::size_t i = 0; i < pts.size(); ++i) {
        const double assigned = distance(
            pts[i],
            res.centroids[static_cast<std::size_t>(res.assignment[i])]);
        for (const auto& c : res.centroids) {
            EXPECT_LE(assigned, distance(pts[i], c) + 1e-9);
        }
    }
}

TEST(KMeans, DeterministicForFixedSeed) {
    const auto pts = blobs(12, 4);
    KMeansConfig cfg;
    cfg.seed = 9;
    const auto a = kmeans(pts, 3, {}, cfg);
    const auto b = kmeans(pts, 3, {}, cfg);
    EXPECT_EQ(a.assignment, b.assignment);
    EXPECT_DOUBLE_EQ(a.inertia, b.inertia);
}

TEST(KMeans, MoreClustersNeverIncreaseInertia) {
    const auto pts = blobs(15, 5);
    double prev = 1e18;
    for (int k : {1, 2, 3, 6}) {
        const auto res = kmeans(pts, k);
        EXPECT_LE(res.inertia, prev + 1e-6) << "k=" << k;
        prev = res.inertia;
    }
}

TEST(KMeans, WeightsPullCentroids) {
    // Two points; put all the weight on one of them.
    const std::vector<Vec2> pts{{0.0, 0.0}, {10.0, 0.0}};
    const std::vector<double> w{100.0, 1.0};
    const auto res = kmeans(pts, 1, w);
    ASSERT_EQ(res.centroids.size(), 1u);
    EXPECT_LT(res.centroids[0].x, 1.0);  // near the heavy point
}

TEST(KMeans, KClampedToDistinctPoints) {
    const std::vector<Vec2> pts{{1.0, 1.0}, {1.0, 1.0}, {2.0, 2.0}};
    const auto res = kmeans(pts, 5);
    EXPECT_LE(res.centroids.size(), 3u);
    EXPECT_EQ(res.assignment.size(), pts.size());
}

}  // namespace
}  // namespace uavdc::geom
