#include "uavdc/lint/linter.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "uavdc/lint/include_graph.hpp"

namespace uavdc::lint {
namespace {

std::vector<std::string> ids_of(const std::vector<Finding>& findings) {
    std::vector<std::string> ids;
    ids.reserve(findings.size());
    for (const auto& f : findings) ids.push_back(f.id);
    return ids;
}

bool has_id(const std::vector<Finding>& findings, const std::string& id) {
    const auto ids = ids_of(findings);
    return std::find(ids.begin(), ids.end(), id) != ids.end();
}

constexpr const char* kLibPath = "src/uavdc/core/fixture.cpp";
constexpr const char* kToolPath = "tools/fixture.cpp";

TEST(Lint, RuleTableIsStable) {
    const auto& table = rules();
    ASSERT_EQ(table.size(), 15u);
    std::set<std::string> ids;
    for (const auto& r : table) ids.insert(r.id);
    EXPECT_EQ(ids.size(), table.size()) << "rule ids must be unique";
    EXPECT_EQ(table.front().id, "UL001");
    EXPECT_EQ(table.front().rule, "no-raw-assert");
}

TEST(Lint, RawAssertFires) {
    const auto findings = lint_source(kLibPath, R"(
void f(int x) {
    assert(x > 0);
}
)");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].id, "UL001");
    EXPECT_EQ(findings[0].rule, "no-raw-assert");
    EXPECT_EQ(findings[0].line, 3);
    EXPECT_EQ(findings[0].file, kLibPath);
}

TEST(Lint, StaticAssertAndLookalikesDoNotFire) {
    const auto findings = lint_source(kLibPath, R"(
static_assert(sizeof(int) == 4);
void my_assert(bool);
void g() { my_assert(true); }
)");
    EXPECT_TRUE(findings.empty());
}

TEST(Lint, AssertInsideStringOrCommentDoesNotFire) {
    const auto findings = lint_source(kLibPath, R"fx(
// a comment mentioning assert(x) is fine
const char* s = "assert(x)";
/* block comment: assert(y) */
)fx");
    EXPECT_TRUE(findings.empty());
}

TEST(Lint, ContractsHeaderIsExemptFromAssertRules) {
    const auto findings =
        lint_source("src/uavdc/util/check.hpp", "#pragma once\nassert(x);\n");
    EXPECT_TRUE(findings.empty());
}

TEST(Lint, AbortFires) {
    const auto findings = lint_source(kLibPath, "void f() { abort(); }\n");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].id, "UL002");
}

TEST(Lint, NondeterminismTokensFire) {
    EXPECT_TRUE(has_id(lint_source(kLibPath, "std::random_device rd;\n"),
                       "UL003"));
    EXPECT_TRUE(has_id(lint_source(kLibPath, "int r = rand();\n"), "UL003"));
    EXPECT_TRUE(has_id(lint_source(kLibPath, "srand(42);\n"), "UL003"));
    EXPECT_TRUE(
        has_id(lint_source(kLibPath, "auto t = time(nullptr);\n"), "UL003"));
    // Identifiers merely containing the tokens are fine.
    EXPECT_TRUE(lint_source(kLibPath, "double runtime = 0;\n").empty());
    EXPECT_TRUE(lint_source(kLibPath, "x.executed_time_s = 1;\n").empty());
    EXPECT_TRUE(lint_source(kLibPath, "int strand(int);\n").empty());
}

TEST(Lint, UnorderedIterationFiresInPlannerPaths) {
    const char* body = R"(
#include <unordered_map>
void f() {
    std::unordered_map<int, double> scores;
    for (const auto& [k, v] : scores) {
        emit(k, v);
    }
}
)";
    const auto findings = lint_source(kLibPath, body);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].id, "UL004");
    EXPECT_EQ(findings[0].rule, "unordered-iteration");
    EXPECT_EQ(findings[0].line, 5);
    // Outside planner result paths the heuristic stays quiet.
    EXPECT_TRUE(lint_source("src/uavdc/io/fixture.cpp", body).empty());
}

TEST(Lint, UnorderedIterationAllowsSortedResults) {
    const auto findings = lint_source(kLibPath, R"(
void f() {
    std::unordered_set<int> seen;
    std::vector<int> out;
    for (int v : seen) out.push_back(v);
    std::sort(out.begin(), out.end());
}
)");
    EXPECT_TRUE(findings.empty());
}

TEST(Lint, UnorderedIterationHonoursAnnotatedSuppression) {
    const auto findings = lint_source(kLibPath, R"(
void f() {
    std::unordered_map<int, int> m;
    // NOLINTNEXTLINE(uavdc-unordered-iteration): reduction is commutative
    for (const auto& [k, v] : m) total += v;
}
)");
    EXPECT_TRUE(findings.empty());
}

TEST(Lint, SuppressionWithoutReasonIsRejected) {
    const auto findings = lint_source(
        kLibPath,
        "void f(int x) { assert(x); }  // NOLINT(uavdc-no-raw-assert)\n");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_NE(findings[0].message.find("reason"), std::string::npos);
}

TEST(Lint, SuppressionWithReasonIsHonoured) {
    const auto findings = lint_source(
        kLibPath,
        "void f(int x) { assert(x); }  "
        "// NOLINT(uavdc-no-raw-assert): third-party macro requires it\n");
    EXPECT_TRUE(findings.empty());
}

TEST(Lint, PragmaOnceRequiredInHeaders) {
    const auto missing =
        lint_source("src/uavdc/core/fixture.hpp", "namespace x {}\n");
    ASSERT_EQ(missing.size(), 1u);
    EXPECT_EQ(missing[0].id, "UL005");

    // Comments and blank lines may precede the pragma.
    EXPECT_TRUE(lint_source("src/uavdc/core/fixture.hpp",
                            "// copyright\n\n#pragma once\nnamespace x {}\n")
                    .empty());
    // Non-headers are exempt.
    EXPECT_TRUE(lint_source(kLibPath, "namespace x {}\n").empty());
}

TEST(Lint, CoutForbiddenInLibraryOnly) {
    const char* body = "#include <iostream>\n"
                       "void f() { std::cout << \"hi\\n\"; }\n";
    const auto findings = lint_source(kLibPath, body);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].id, "UL006");
    EXPECT_EQ(findings[0].line, 2);
    // Tools and benches may print.
    EXPECT_TRUE(lint_source(kToolPath, body).empty());
    EXPECT_TRUE(lint_source("bench/fixture.cpp", body).empty());
}

TEST(Lint, DenseRebuildInLoopFires) {
    const char* body = R"(
void f(const std::vector<geom::Vec2>& pts) {
    for (std::size_t i = 0; i < pts.size(); ++i) {
        const auto g = graph::DenseGraph::euclidean(pts);
        use(g);
    }
}
)";
    const auto findings = lint_source(kLibPath, body);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].id, "UL007");
    EXPECT_EQ(findings[0].rule, "no-dense-rebuild-in-loop");
    EXPECT_EQ(findings[0].line, 4);
    // Only core/ planner files are in scope.
    EXPECT_TRUE(lint_source("src/uavdc/graph/fixture.cpp", body).empty());
    EXPECT_TRUE(lint_source(kToolPath, body).empty());
}

TEST(Lint, DenseRebuildOutsideLoopIsFine) {
    const auto findings = lint_source(kLibPath, R"(
void f(const std::vector<geom::Vec2>& pts) {
    const auto g = graph::DenseGraph::euclidean(pts);
    for (std::size_t i = 0; i < pts.size(); ++i) use(g.weight(0, i));
}
)");
    EXPECT_TRUE(findings.empty());
}

TEST(Lint, DenseRebuildInWhileAndBracelessBodiesFires) {
    EXPECT_TRUE(has_id(lint_source(kLibPath, R"(
void f(const std::vector<geom::Vec2>& pts) {
    while (improving) {
        score(graph::DenseGraph::euclidean(pts));
    }
}
)"),
                       "UL007"));
    // Brace-less single-statement loop body.
    EXPECT_TRUE(has_id(lint_source(kLibPath, R"(
void f(const std::vector<geom::Vec2>& pts) {
    for (int r = 0; r < rounds; ++r)
        score(graph::DenseGraph::euclidean(pts));
}
)"),
                       "UL007"));
}

TEST(Lint, DenseRebuildAfterLoopClosesDoesNotFire) {
    const auto findings = lint_source(kLibPath, R"(
void f(const std::vector<geom::Vec2>& pts) {
    for (std::size_t i = 0; i < pts.size(); ++i) {
        accumulate(pts[i]);
    }
    const auto g = graph::DenseGraph::euclidean(pts);
}
)");
    EXPECT_TRUE(findings.empty());
}

TEST(Lint, DenseRebuildHonoursAnnotatedSuppression) {
    const auto findings = lint_source(kLibPath, R"(
void f(const std::vector<geom::Vec2>& pts) {
    for (std::size_t i = 0; i < pts.size(); ++i) {
        // NOLINTNEXTLINE(uavdc-no-dense-rebuild-in-loop): oracle rescans
        const auto g = graph::DenseGraph::euclidean(pts);
    }
}
)");
    EXPECT_TRUE(findings.empty());
}

TEST(Lint, RawThreadFiresOutsideUtil) {
    const char* body = "#include <thread>\n"
                       "void f() { std::thread t(work); t.join(); }\n";
    const auto findings = lint_source(kLibPath, body);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].id, "UL008");
    EXPECT_EQ(findings[0].rule, "no-raw-thread");
    EXPECT_EQ(findings[0].line, 2);
    // The pool implementation in util/ may own std::thread; tools and
    // benches are out of the library scope entirely.
    EXPECT_TRUE(lint_source("src/uavdc/util/thread_pool.cpp", body).empty());
    EXPECT_TRUE(lint_source(kToolPath, body).empty());
    // std::this_thread (sleep/yield) is not a thread construction.
    EXPECT_TRUE(
        lint_source(kLibPath, "std::this_thread::yield();\n").empty());
}

TEST(Lint, DetachFiresEverywhereInLibrary) {
    const char* body = "void f(std::thread& t) { t.detach(); }\n";
    EXPECT_TRUE(has_id(lint_source(kLibPath, body), "UL008"));
    // detach() is banned even inside util/ — the pool must stay joinable.
    EXPECT_TRUE(
        has_id(lint_source("src/uavdc/util/thread_pool.cpp", body), "UL008"));
    EXPECT_TRUE(lint_source(kToolPath, body).empty());
    // A member named detach on a non-thread is still flagged by the token
    // heuristic, so the escape hatch must work.
    const auto suppressed = lint_source(
        kLibPath,
        "void f(std::thread& t) { t.detach(); }  "
        "// NOLINT(uavdc-no-raw-thread): watchdog must survive teardown\n");
    EXPECT_TRUE(suppressed.empty());
}

TEST(Lint, BatchedDistanceFiresInsideLoops) {
    const char* body = R"(
void f(const std::vector<geom::Vec2>& pts, geom::Vec2 q) {
    for (std::size_t i = 0; i < pts.size(); ++i) {
        best = std::min(best, geom::distance(pts[i], q));
    }
}
)";
    const auto findings = lint_source(kLibPath, body);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].id, "UL009");
    EXPECT_EQ(findings[0].rule, "batched-distance");
    EXPECT_EQ(findings[0].line, 4);
    // Only core/ is in scope; geom owns the primitives, tools are free.
    EXPECT_TRUE(lint_source("src/uavdc/geom/fixture.cpp", body).empty());
    EXPECT_TRUE(lint_source(kToolPath, body).empty());
    // The kernels themselves are the blessed scalar-per-lane loops.
    EXPECT_TRUE(
        lint_source("src/uavdc/core/batch_kernels.cpp", body).empty());
}

TEST(Lint, BatchedDistanceVariantsAndNonLoopUses) {
    // sqrt / distance2 / hypot in loops all fire.
    EXPECT_TRUE(has_id(lint_source(kLibPath, R"(
void f() {
    while (go) { d = std::sqrt(dx * dx + dy * dy); }
}
)"),
                       "UL009"));
    EXPECT_TRUE(has_id(lint_source(kLibPath, R"(
void f() {
    for (int i = 0; i < n; ++i) acc += geom::distance2(a[i], q);
}
)"),
                       "UL009"));
    EXPECT_TRUE(has_id(lint_source(kLibPath, R"(
void f() {
    for (int i = 0; i < n; ++i) acc += std::hypot(xs[i], ys[i]);
}
)"),
                       "UL009"));
    // Outside a loop: a single distance call is fine.
    EXPECT_TRUE(lint_source(kLibPath, R"(
void f(geom::Vec2 a, geom::Vec2 b) {
    const double d = geom::distance(a, b);
}
)")
                    .empty());
    // node_distance / squared_distances_to_point are not the banned tokens.
    EXPECT_TRUE(lint_source(kLibPath, R"(
void f() {
    for (int i = 0; i < n; ++i) acc += ctx.node_distance(0, i);
}
)")
                    .empty());
}

TEST(Lint, BatchedDistanceHonoursBlockSuppression) {
    const auto findings = lint_source(kLibPath, R"(
// NOLINTBEGIN(uavdc-batched-distance): from-scratch oracle stays scalar
double oracle(const std::vector<geom::Vec2>& pts, geom::Vec2 q) {
    double acc = 0.0;
    for (std::size_t i = 0; i < pts.size(); ++i) {
        acc += geom::distance(pts[i], q);
    }
    return acc;
}
// NOLINTEND(uavdc-batched-distance)
)");
    EXPECT_TRUE(findings.empty());
    // A closed block no longer suppresses what follows it.
    const auto after = lint_source(kLibPath, R"(
// NOLINTBEGIN(uavdc-batched-distance): oracle
// NOLINTEND(uavdc-batched-distance)
void f(const std::vector<geom::Vec2>& pts, geom::Vec2 q) {
    for (std::size_t i = 0; i < pts.size(); ++i) {
        acc += geom::distance(pts[i], q);
    }
}
)");
    EXPECT_TRUE(has_id(after, "UL009"));
    // A BEGIN without a reason is rejected like any bare NOLINT.
    const auto bare = lint_source(kLibPath, R"(
// NOLINTBEGIN(uavdc-batched-distance)
void f(const std::vector<geom::Vec2>& pts, geom::Vec2 q) {
    for (std::size_t i = 0; i < pts.size(); ++i) {
        acc += geom::distance(pts[i], q);
    }
}
// NOLINTEND(uavdc-batched-distance)
)");
    EXPECT_TRUE(has_id(bare, "UL009"));
}

TEST(Lint, FpReductionFiresOnFloatingAccumulate) {
    const char* body = R"(
double total(const std::vector<double>& xs) {
    return std::accumulate(xs.begin(), xs.end(), 0.0);
}
)";
    const auto findings = lint_source(kLibPath, body);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].id, "UL012");
    EXPECT_EQ(findings[0].rule, "nondeterministic-fp-reduction");
    EXPECT_EQ(findings[0].line, 3);
    // Only core/ is in scope — io/ aggregation and tools are free.
    EXPECT_TRUE(lint_source("src/uavdc/io/fixture.cpp", body).empty());
    EXPECT_TRUE(lint_source(kToolPath, body).empty());
}

TEST(Lint, FpReductionVariantsAndIntegerUses) {
    // reduce / transform_reduce with a floating hint nearby fire.
    EXPECT_TRUE(has_id(lint_source(kLibPath, R"(
double f(const std::vector<double>& xs) {
    return std::reduce(xs.begin(), xs.end(),
                       0.0, std::plus<double>{});
}
)"),
                       "UL012"));
    EXPECT_TRUE(has_id(lint_source(kLibPath, R"(
double f(const std::vector<double>& xs) {
    return std::transform_reduce(xs.begin(), xs.end(), 0.0, std::plus<>{},
                                 square);
}
)"),
                       "UL012"));
    // Integer accumulation is associative — no finding.
    EXPECT_TRUE(lint_source(kLibPath, R"(
int f(const std::vector<int>& xs) {
    return std::accumulate(xs.begin(), xs.end(), 0);
}
)")
                    .empty());
    // The word in a comment is not a call.
    EXPECT_TRUE(
        lint_source(kLibPath, "// we accumulate(0.0) in tree order\n")
            .empty());
}

TEST(Lint, FpReductionFiresOnOmpReductionPragma) {
    const auto findings = lint_source(
        kLibPath, "#pragma omp parallel for reduction(+ : total)\n");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].id, "UL012");
    // An omp pragma without a reduction clause is out of this rule's scope.
    EXPECT_TRUE(
        lint_source(kLibPath, "#pragma omp parallel for\n").empty());
}

TEST(Lint, FpReductionHonoursAnnotatedSuppression) {
    EXPECT_TRUE(lint_source(kLibPath, R"(
double f(const std::vector<double>& xs) {
    // NOLINTNEXTLINE(uavdc-nondeterministic-fp-reduction): test-only sum
    return std::accumulate(xs.begin(), xs.end(), 0.0);
}
)")
                    .empty());
    // Without a reason the suppression is rejected.
    const auto bare = lint_source(kLibPath, R"(
double f(const std::vector<double>& xs) {
    // NOLINTNEXTLINE(uavdc-nondeterministic-fp-reduction)
    return std::accumulate(xs.begin(), xs.end(), 0.0);
}
)");
    ASSERT_TRUE(has_id(bare, "UL012"));
    EXPECT_NE(bare[0].message.find("reason"), std::string::npos);
}

TEST(Lint, UncheckedNarrowingFires) {
    const char* body = R"(
int f(std::size_t n) {
    return static_cast<int>(n);
}
)";
    const auto findings = lint_source(kLibPath, body);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].id, "UL013");
    EXPECT_EQ(findings[0].rule, "unchecked-narrowing");
    EXPECT_EQ(findings[0].line, 3);
    // service/ is in scope too; io/ and tools are not.
    EXPECT_TRUE(
        has_id(lint_source("src/uavdc/service/fixture.cpp", body), "UL013"));
    EXPECT_TRUE(lint_source("src/uavdc/io/fixture.cpp", body).empty());
    EXPECT_TRUE(lint_source(kToolPath, body).empty());
}

TEST(Lint, UncheckedNarrowingTargetTypes) {
    // Narrow targets fire; widening and floating targets do not.
    EXPECT_TRUE(has_id(
        lint_source(kLibPath, "x = static_cast<std::int32_t>(n);\n"),
        "UL013"));
    EXPECT_TRUE(has_id(
        lint_source(kLibPath, "x = static_cast< unsigned short >(n);\n"),
        "UL013"));
    EXPECT_TRUE(
        lint_source(kLibPath, "x = static_cast<std::int64_t>(n);\n").empty());
    EXPECT_TRUE(
        lint_source(kLibPath, "x = static_cast<std::size_t>(v);\n").empty());
    EXPECT_TRUE(
        lint_source(kLibPath, "x = static_cast<double>(n);\n").empty());
}

TEST(Lint, UncheckedNarrowingGuardedCastsAreFine) {
    // util::checked_cast is the sanctioned idiom.
    EXPECT_TRUE(lint_source(kLibPath, R"(
int f(std::size_t n) {
    return util::checked_cast<int>(n);
}
)")
                    .empty());
    // A UAVDC_CHECK guard within the surrounding lines counts.
    EXPECT_TRUE(lint_source(kLibPath, R"(
int f(std::size_t n) {
    UAVDC_CHECK(n <= 1000) << "candidate count overflow";
    return static_cast<int>(n);
}
)")
                    .empty());
    // The guard window is bounded: a check far above does not excuse it.
    EXPECT_TRUE(has_id(lint_source(kLibPath, R"(
int f(std::size_t n) {
    UAVDC_CHECK(n <= 1000);
    use(n);
    use(n);
    use(n);
    use(n);
    use(n);
    return static_cast<int>(n);
}
)"),
                       "UL013"));
}

TEST(Lint, UncheckedNarrowingHonoursAnnotatedSuppression) {
    EXPECT_TRUE(lint_source(kLibPath,
                            "h ^= static_cast<std::uint32_t>(v);  "
                            "// NOLINT(uavdc-unchecked-narrowing): hash "
                            "mixes the low 32 bits by design\n")
                    .empty());
    const auto bare = lint_source(
        kLibPath,
        "h ^= static_cast<std::uint32_t>(v);  "
        "// NOLINT(uavdc-unchecked-narrowing)\n");
    ASSERT_TRUE(has_id(bare, "UL013"));
    EXPECT_NE(bare[0].message.find("reason"), std::string::npos);
}

TEST(Lint, SqrtCompareFires) {
    const char* body = R"(
bool covered(geom::Vec2 a, geom::Vec2 b, double r) {
    return geom::distance(a, b) <= r;
}
)";
    const auto findings = lint_source(kLibPath, body);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].id, "UL014");
    EXPECT_EQ(findings[0].rule, "sqrt-compare");
    EXPECT_EQ(findings[0].line, 3);
    // Scope: core/ library code only; other modules and tools are exempt,
    // and batch_kernels implements both forms so it never fires.
    EXPECT_TRUE(lint_source("src/uavdc/geom/fixture.cpp", body).empty());
    EXPECT_TRUE(lint_source(kToolPath, body).empty());
    EXPECT_TRUE(
        lint_source("src/uavdc/core/batch_kernels.cpp", body).empty());
}

TEST(Lint, SqrtCompareOperatorShapes) {
    // Both orientations of the comparison fire, for all three calls.
    EXPECT_TRUE(has_id(lint_source(kLibPath, "ok = std::sqrt(d2) < best;\n"),
                       "UL014"));
    EXPECT_TRUE(has_id(
        lint_source(kLibPath, "if (r >= std::hypot(dx, dy)) take();\n"),
        "UL014"));
    // Metric uses do not fire: accumulation, returns, stream shifts.
    EXPECT_TRUE(
        lint_source(kLibPath, "total += geom::distance(a, b);\n").empty());
    EXPECT_TRUE(lint_source(kLibPath, "return std::sqrt(d2);\n").empty());
    EXPECT_TRUE(
        lint_source(kLibPath, "os << geom::distance(a, b);\n").empty());
}

TEST(Lint, SqrtCompareHonoursAnnotatedSuppression) {
    EXPECT_TRUE(lint_source(kLibPath,
                            "keep = geom::distance(a, b) < cutoff;  "
                            "// NOLINT(uavdc-sqrt-compare): reporting "
                            "threshold is specified on the exact metric\n")
                    .empty());
    const auto bare = lint_source(kLibPath,
                                  "keep = geom::distance(a, b) < cutoff;  "
                                  "// NOLINT(uavdc-sqrt-compare)\n");
    ASSERT_TRUE(has_id(bare, "UL014"));
    EXPECT_NE(bare[0].message.find("reason"), std::string::npos);
}

TEST(Lint, NoRawSocketFiresOutsideNet) {
    const char* body = R"(
void f(int fd) {
    char buf[64];
    read(fd, buf, sizeof(buf));
}
)";
    const auto findings = lint_source(kLibPath, body);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].id, "UL015");
    EXPECT_EQ(findings[0].rule, "no-raw-socket");
    EXPECT_EQ(findings[0].line, 4);
    // Library-wide except net/ itself; tools are exempt. A global-scope
    // qualification is still the raw syscall.
    EXPECT_TRUE(
        has_id(lint_source("src/uavdc/service/fixture.cpp", body), "UL015"));
    EXPECT_TRUE(lint_source(kToolPath, body).empty());
    EXPECT_TRUE(has_id(
        lint_source(kLibPath, "::connect(fd, addr, sizeof(addr));\n"),
        "UL015"));
    EXPECT_TRUE(
        has_id(lint_source(kLibPath, "socket(AF_INET, SOCK_STREAM, 0);\n"),
               "UL015"));
}

TEST(Lint, NoRawSocketSkipsMemberAndQualifiedCalls) {
    // Member calls and named-namespace qualifications are not syscalls.
    EXPECT_TRUE(
        lint_source(kLibPath, "sock.read(buf, sizeof(buf));\n").empty());
    EXPECT_TRUE(
        lint_source(kLibPath, "stream->write(data, n);\n").empty());
    EXPECT_TRUE(lint_source(kLibPath,
                            "auto f = std::bind(&T::run, this);\n")
                    .empty());
    EXPECT_TRUE(
        lint_source(kLibPath, "net::poll_wait(entries, 200);\n").empty());
    // Token boundaries: readlink / fread are different identifiers.
    EXPECT_TRUE(
        lint_source(kLibPath, "readlink(path, buf, sizeof(buf));\n").empty());
    EXPECT_TRUE(
        lint_source(kLibPath, "fread(buf, 1, n, fp);\n").empty());
}

TEST(Lint, NoRawSocketRequiresEintrLoopInsideNet) {
    constexpr const char* kNetPath = "src/uavdc/net/fixture.cpp";
    // A bare blocking call inside net/ without EINTR handling fires.
    const auto bare = lint_source(kNetPath, R"(
void f(int fd) {
    char buf[64];
    ::read(fd, buf, sizeof(buf));
}
)");
    ASSERT_TRUE(has_id(bare, "UL015"));
    EXPECT_NE(bare[0].message.find("EINTR"), std::string::npos);
    // The canonical retry loop is fine.
    EXPECT_TRUE(lint_source(kNetPath, R"(
void f(int fd) {
    char buf[64];
    ssize_t rc = 0;
    do {
        rc = ::read(fd, buf, sizeof(buf));
    } while (rc < 0 && errno == EINTR);
}
)")
                    .empty());
    // Setup syscalls never block, so they are exempt inside net/.
    EXPECT_TRUE(lint_source(kNetPath, R"(
void f() {
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ::bind(fd, addr, sizeof(addr));
    ::listen(fd, 64);
}
)")
                    .empty());
}

TEST(Lint, NoRawSocketHonoursAnnotatedSuppression) {
    EXPECT_TRUE(lint_source(kLibPath,
                            "write(fd, &b, 1);  "
                            "// NOLINT(uavdc-no-raw-socket): async-signal-"
                            "safe context, Socket is not re-entrant\n")
                    .empty());
    const auto bare = lint_source(kLibPath,
                                  "write(fd, &b, 1);  "
                                  "// NOLINT(uavdc-no-raw-socket)\n");
    ASSERT_TRUE(has_id(bare, "UL015"));
    EXPECT_NE(bare[0].message.find("reason"), std::string::npos);
}

TEST(Lint, ScanLinesSeparatesCodeAndComments) {
    const auto lines = scan_lines("int a;  // trailing note\n"
                                  "/* block */ int b;\n"
                                  "const char* s = \"in // string\";\n");
    ASSERT_EQ(lines.size(), 4u);  // trailing newline yields an empty line
    EXPECT_NE(lines[0].code.find("int a;"), std::string::npos);
    EXPECT_EQ(lines[0].comment, " trailing note");
    EXPECT_NE(lines[1].code.find("int b;"), std::string::npos);
    EXPECT_EQ(lines[1].comment, " block ");
    // String contents are blanked from the code view.
    EXPECT_EQ(lines[2].code.find("string"), std::string::npos);
    EXPECT_NE(lines[2].code.find("\"\""), std::string::npos);
}

TEST(Lint, ScanLinesKeepsRawViewWithLiteralContents) {
    const auto lines =
        scan_lines("#include \"uavdc/geom/vec2.hpp\"  // comment\n");
    ASSERT_EQ(lines.size(), 2u);
    // The code view blanks the literal; the raw view preserves it.
    EXPECT_EQ(lines[0].code.find("vec2"), std::string::npos);
    EXPECT_NE(lines[0].raw.find("\"uavdc/geom/vec2.hpp\""),
              std::string::npos);
    EXPECT_EQ(lines[0].raw.find("comment"), std::string::npos);
}

TEST(Lint, ScanLinesMultiLineRawStringKeepsLineNumbers) {
    const auto lines = scan_lines("const char* s = R\"(line one\n"
                                  "assert(x) inside raw string\n"
                                  ")\";\n"
                                  "assert(y);\n");
    ASSERT_EQ(lines.size(), 5u);
    // Raw-string contents never reach the code view...
    EXPECT_EQ(lines[1].code, "");
    // ...and the line counter stays aligned: the real assert is line 4.
    const auto findings =
        lint_source(kLibPath, "const char* s = R\"(line one\n"
                              "assert(x) inside raw string\n"
                              ")\";\n"
                              "assert(y);\n");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].line, 4);
}

TEST(Lint, ScanLinesMalformedRawStringDoesNotSwallowFile) {
    // 'R"' with no '(' on the same line is not a raw-string opener: the
    // old scanner searched the whole rest of the file for one (the first
    // later '(' — here inside assert — became the "delimiter" and
    // everything after was swallowed). Now the R is ordinary code and the
    // quote opens a plain string that closes at the next quote.
    const auto findings = lint_source(kLibPath, "auto x = R\"oops\n"
                                                "still\";\n"
                                                "assert(y);\n");
    ASSERT_TRUE(has_id(findings, "UL001"));
    EXPECT_EQ(findings[0].line, 3);
}

TEST(Lint, ScanLinesUnterminatedBlockCommentAtEofIsSafe) {
    const auto lines = scan_lines("int a;\n/* never closed\nassert(x)\n");
    ASSERT_EQ(lines.size(), 4u);
    EXPECT_EQ(lines[2].code, "");
    EXPECT_NE(lines[2].comment.find("assert"), std::string::npos);
    // And the linter sees no code in the dangling comment.
    EXPECT_TRUE(
        lint_source(kLibPath, "int a;\n/* never closed\nassert(x)\n")
            .empty());
}

TEST(Lint, ScanLinesLineCommentBackslashContinuation) {
    // A // comment ending in a backslash splices the next line into the
    // comment (phase-2 line continuation), so the "code" there is inert.
    const auto lines = scan_lines("// continued \\\nassert(x);\nint b;\n");
    ASSERT_EQ(lines.size(), 4u);
    EXPECT_EQ(lines[1].code, "");
    EXPECT_NE(lines[1].comment.find("assert"), std::string::npos);
    EXPECT_NE(lines[2].code.find("int b;"), std::string::npos);
    EXPECT_TRUE(
        lint_source(kLibPath, "// continued \\\nassert(x);\nint b;\n")
            .empty());
}

TEST(Lint, ScanLinesStringBackslashNewlineKeepsLineNumbers) {
    // A backslash-newline splice inside a string must not desynchronise
    // the line counter.
    const auto findings = lint_source(kLibPath, "const char* s = \"a\\\n"
                                                "b\";\n"
                                                "assert(y);\n");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].id, "UL001");
    EXPECT_EQ(findings[0].line, 3);
}

TEST(Lint, DiscoverFilesIsSortedAndDeterministic) {
    namespace fs = std::filesystem;
    const fs::path root =
        fs::temp_directory_path() / "uavdc_lint_discover_fixture";
    fs::remove_all(root);
    fs::create_directories(root / "b_dir");
    fs::create_directories(root / "a_dir");
    fs::create_directories(root / "build");     // skipped
    fs::create_directories(root / ".hidden");   // skipped
    const auto touch = [](const fs::path& p) {
        std::ofstream(p) << "// empty\n";
    };
    touch(root / "b_dir" / "z.cpp");
    touch(root / "b_dir" / "a.hpp");
    touch(root / "a_dir" / "m.cc");
    touch(root / "top.cpp");
    touch(root / "build" / "gen.cpp");
    touch(root / ".hidden" / "x.cpp");
    touch(root / "README.md");  // wrong extension

    const auto first = discover_files({root.generic_string()});
    const auto second = discover_files({root.generic_string()});
    EXPECT_EQ(first, second);
    ASSERT_EQ(first.size(), 4u);
    EXPECT_TRUE(std::is_sorted(first.begin(), first.end()));
    EXPECT_NE(first[0].find("a_dir/m.cc"), std::string::npos);
    for (const auto& f : first) {
        EXPECT_EQ(f.find("build"), std::string::npos) << f;
        EXPECT_EQ(f.find(".hidden"), std::string::npos) << f;
    }
    fs::remove_all(root);
}

TEST(Lint, FindingFormatting) {
    const Finding f{"src/a.cpp", 7, "UL001", "no-raw-assert", "boom"};
    EXPECT_EQ(to_string(f), "src/a.cpp:7: [UL001 no-raw-assert] boom");
}

TEST(Lint, MultipleViolationsReportEachLine) {
    const auto findings = lint_source(kLibPath, R"(
void f() {
    assert(1);
    abort();
}
)");
    ASSERT_EQ(findings.size(), 2u);
    EXPECT_EQ(findings[0].line, 3);
    EXPECT_EQ(findings[0].id, "UL001");
    EXPECT_EQ(findings[1].line, 4);
    EXPECT_EQ(findings[1].id, "UL002");
}

// The gate itself: the real tree must be clean under the FULL engine —
// all per-file rules plus the include-graph passes — over src/, tools/,
// and bench/. This is the same sweep the uavdc_lint_self ctest and the CI
// static-analysis job run.
TEST(Lint, SelfRunOverSourceTreeIsClean) {
    const std::string root = UAVDC_SOURCE_DIR;
    const auto analysis = analyze_tree(
        {root + "/src", root + "/tools", root + "/bench"});
    for (const auto& f : analysis.findings) ADD_FAILURE() << to_string(f);
    EXPECT_TRUE(analysis.findings.empty());
}

}  // namespace
}  // namespace uavdc::lint
