#include "uavdc/lint/report.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "uavdc/io/json.hpp"
#include "uavdc/lint/include_graph.hpp"

namespace uavdc::lint {
namespace {

namespace fs = std::filesystem;

std::vector<Finding> sample_findings() {
    return {
        {"src/uavdc/core/a.cpp", 3, "UL001", "no-raw-assert",
         "raw assert() is compiled out"},
        {"src/uavdc/core/a.cpp", 9, "UL013", "unchecked-narrowing",
         "static_cast truncates \"silently\"\nacross lines"},
        {"src/uavdc/sim/b.cpp", 1, "UL005", "pragma-once",
         "headers must open with #pragma once"},
    };
}

TEST(LintReport, TextFormatMatchesCli) {
    const auto text = to_text(sample_findings());
    EXPECT_NE(text.find("src/uavdc/core/a.cpp:3: [UL001 no-raw-assert]"),
              std::string::npos);
    EXPECT_NE(text.find("3 finding(s)"), std::string::npos);
    EXPECT_EQ(to_text({}), "");
}

TEST(LintReport, JsonIsParseableAndEscaped) {
    const auto doc = io::Json::parse(to_json(sample_findings()));
    EXPECT_EQ(doc.at("tool").as_string(), "uavdc_lint");
    EXPECT_EQ(doc.at("count").as_number(), 3.0);
    const auto& arr = doc.at("findings").as_array();
    ASSERT_EQ(arr.size(), 3u);
    EXPECT_EQ(arr[0].at("file").as_string(), "src/uavdc/core/a.cpp");
    EXPECT_EQ(arr[0].at("line").as_number(), 3.0);
    EXPECT_EQ(arr[0].at("id").as_string(), "UL001");
    // The quote/newline-laden message round-trips intact.
    EXPECT_EQ(arr[1].at("message").as_string(),
              "static_cast truncates \"silently\"\nacross lines");
    // Empty input still parses.
    const auto empty = io::Json::parse(to_json({}));
    EXPECT_EQ(empty.at("count").as_number(), 0.0);
    EXPECT_TRUE(empty.at("findings").as_array().empty());
}

// Structural SARIF 2.1.0 validation: every property GitHub code scanning
// requires, checked against the parsed document (the schema's required
// fields, not just substring presence).
TEST(LintReport, SarifIsStructurallyValid) {
    const auto doc = io::Json::parse(to_sarif(sample_findings()));
    EXPECT_EQ(doc.at("$schema").as_string(),
              "https://json.schemastore.org/sarif-2.1.0.json");
    EXPECT_EQ(doc.at("version").as_string(), "2.1.0");

    const auto& runs = doc.at("runs").as_array();
    ASSERT_EQ(runs.size(), 1u);
    const auto& driver = runs[0].at("tool").at("driver");
    EXPECT_EQ(driver.at("name").as_string(), "uavdc_lint");
    const auto& rule_objs = driver.at("rules").as_array();
    ASSERT_EQ(rule_objs.size(), rules().size());
    for (std::size_t i = 0; i < rule_objs.size(); ++i) {
        EXPECT_EQ(rule_objs[i].at("id").as_string(), rules()[i].id);
        EXPECT_FALSE(rule_objs[i]
                         .at("shortDescription")
                         .at("text")
                         .as_string()
                         .empty());
    }

    const auto& results = runs[0].at("results").as_array();
    ASSERT_EQ(results.size(), 3u);
    for (const auto& r : results) {
        EXPECT_EQ(r.at("level").as_string(), "error");
        EXPECT_FALSE(r.at("message").at("text").as_string().empty());
        const auto& locs = r.at("locations").as_array();
        ASSERT_EQ(locs.size(), 1u);
        const auto& phys = locs[0].at("physicalLocation");
        EXPECT_FALSE(
            phys.at("artifactLocation").at("uri").as_string().empty());
        // The spec requires startLine >= 1.
        EXPECT_GE(phys.at("region").at("startLine").as_number(), 1.0);
    }
    // ruleIndex points back into the driver rule table.
    EXPECT_EQ(results[0].at("ruleId").as_string(), "UL001");
    EXPECT_EQ(rule_objs[static_cast<std::size_t>(
                            results[0].at("ruleIndex").as_number())]
                  .at("id")
                  .as_string(),
              "UL001");
}

TEST(LintReport, SarifClampsLineZeroAndHandlesEmpty) {
    // Line-0 findings (unreadable file, missing pragma in empty header)
    // must still satisfy startLine >= 1.
    const std::vector<Finding> zero = {
        {"src/x.cpp", 0, "UL000", "unreadable-file", "cannot open"}};
    const auto doc = io::Json::parse(to_sarif(zero));
    const auto& r = doc.at("runs").as_array()[0].at("results").as_array();
    ASSERT_EQ(r.size(), 1u);
    EXPECT_EQ(r[0].at("locations").as_array()[0]
                  .at("physicalLocation")
                  .at("region")
                  .at("startLine")
                  .as_number(),
              1.0);
    // UL000 is not in the rule table: no ruleIndex is emitted.
    EXPECT_FALSE(r[0].contains("ruleIndex"));

    const auto empty = io::Json::parse(to_sarif({}));
    EXPECT_TRUE(empty.at("runs")
                    .as_array()[0]
                    .at("results")
                    .as_array()
                    .empty());
}

TEST(LintReport, BaselineRoundTrip) {
    const auto base = make_baseline(sample_findings());
    EXPECT_EQ(base.counts.size(), 3u);
    const auto text = serialize_baseline(base);
    EXPECT_EQ(text.rfind("# uavdc_lint baseline v1\n", 0), 0u);
    const auto parsed = parse_baseline(text);
    EXPECT_EQ(parsed.counts, base.counts);
    // Serialization is canonical: round-tripping is byte-identical.
    EXPECT_EQ(serialize_baseline(parsed), text);
}

TEST(LintReport, BaselineKeysAreLineIndependent) {
    auto findings = sample_findings();
    const auto base = make_baseline(findings);
    // Shift every finding by 40 lines (an unrelated edit above them).
    for (auto& f : findings) f.line += 40;
    EXPECT_TRUE(new_findings(findings, base).empty());
}

TEST(LintReport, BaselineSurfacesOnlyNewFindings) {
    const auto findings = sample_findings();
    // Baseline covers only the first finding.
    const auto base = make_baseline({findings[0]});
    const auto fresh = new_findings(findings, base);
    ASSERT_EQ(fresh.size(), 2u);
    EXPECT_EQ(fresh[0].id, "UL013");
    EXPECT_EQ(fresh[1].id, "UL005");
    // A second occurrence of a baselined key still surfaces: counts are a
    // multiset, not a set.
    auto doubled = findings;
    doubled.push_back(findings[0]);
    const auto extra = new_findings(doubled, make_baseline(findings));
    ASSERT_EQ(extra.size(), 1u);
    EXPECT_EQ(extra[0].id, "UL001");
}

TEST(LintReport, BaselineParserFailsClosed) {
    EXPECT_THROW((void)parse_baseline(""), std::runtime_error);
    EXPECT_THROW((void)parse_baseline("findings: none\n"),
                 std::runtime_error);
    EXPECT_THROW(
        (void)parse_baseline("# uavdc_lint baseline v1\nno-tab-line\n"),
        std::runtime_error);
    EXPECT_THROW(
        (void)parse_baseline("# uavdc_lint baseline v1\nNaN\tkey\n"),
        std::runtime_error);
    EXPECT_THROW(
        (void)parse_baseline("# uavdc_lint baseline v1\n0\tkey\n"),
        std::runtime_error);
    // Comments and blank lines are tolerated.
    const auto ok = parse_baseline(
        "# uavdc_lint baseline v1\n\n# a note\n2\tsrc/a.cpp|UL001|msg\n");
    EXPECT_EQ(ok.counts.at("src/a.cpp|UL001|msg"), 2);
}

TEST(LintReport, CheckedInBaselineIsEmptyAndGatePasses) {
    const std::string root = UAVDC_SOURCE_DIR;
    std::ifstream in(root + "/lint_baseline.txt", std::ios::binary);
    ASSERT_TRUE(in) << "lint_baseline.txt must be checked in at the repo "
                       "root";
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    const auto base = parse_baseline(text);
    // The policy the ISSUE sets: true findings are fixed or carry NOLINT
    // reasons in-source; the baseline stays empty.
    EXPECT_TRUE(base.counts.empty())
        << "baseline must stay empty — fix findings or NOLINT with a "
           "reason instead of baselining them";
    const auto analysis =
        analyze_tree({root + "/src", root + "/tools", root + "/bench"});
    EXPECT_TRUE(new_findings(analysis.findings, base).empty());
}

// Two full runs over the same fixture tree must produce byte-identical
// output in every format — file discovery, analysis, and serialization
// are all deterministic.
TEST(LintReport, TwoRunsAreByteIdentical) {
    const fs::path root =
        fs::temp_directory_path() / "uavdc_lint_determinism_fixture";
    fs::remove_all(root);
    fs::create_directories(root / "src/uavdc/core");
    fs::create_directories(root / "src/uavdc/service");
    const auto write = [&](const std::string& rel, const std::string& s) {
        std::ofstream(root / rel) << s;
    };
    write("src/uavdc/core/a.cpp",
          "#include \"uavdc/service/x.hpp\"\nvoid f() { assert(1); }\n");
    write("src/uavdc/core/b.cpp", "int g() { abort(); }\n");
    write("src/uavdc/service/x.hpp", "#pragma once\n");

    const auto run = [&] {
        const auto analysis =
            analyze_tree({(root / "src").generic_string()});
        return to_text(analysis.findings) + to_json(analysis.findings) +
               to_sarif(analysis.findings) + to_dot(analysis.graph) +
               serialize_baseline(make_baseline(analysis.findings));
    };
    const std::string first = run();
    const std::string second = run();
    EXPECT_FALSE(first.empty());
    EXPECT_EQ(first, second);
    fs::remove_all(root);
}

}  // namespace
}  // namespace uavdc::lint
