#include "uavdc/graph/local_search.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>
#include <vector>

#include "uavdc/util/rng.hpp"

namespace uavdc::graph {
namespace {

std::vector<geom::Vec2> random_points(int n, std::uint64_t seed) {
    util::Rng rng(seed);
    std::vector<geom::Vec2> pts;
    for (int i = 0; i < n; ++i) {
        pts.push_back({rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)});
    }
    return pts;
}

TEST(TwoOpt, FixesObviousCrossing) {
    // Square visited in crossing order 0-2-1-3.
    const std::vector<geom::Vec2> pts{
        {0.0, 0.0}, {1.0, 0.0}, {1.0, 1.0}, {0.0, 1.0}};
    const DenseGraph g = DenseGraph::euclidean(pts);
    std::vector<std::size_t> tour{0, 2, 1, 3};
    const double before = g.tour_length(tour);
    const double gain = two_opt(g, tour);
    EXPECT_GT(gain, 0.0);
    EXPECT_NEAR(g.tour_length(tour), before - gain, 1e-12);
    EXPECT_NEAR(g.tour_length(tour), 4.0, 1e-12);
}

TEST(TwoOpt, NeverLengthens) {
    for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
        const auto pts = random_points(30, seed);
        const DenseGraph g = DenseGraph::euclidean(pts);
        std::vector<std::size_t> tour(pts.size());
        std::iota(tour.begin(), tour.end(), std::size_t{0});
        const double before = g.tour_length(tour);
        const double gain = two_opt(g, tour);
        EXPECT_GE(gain, 0.0);
        EXPECT_NEAR(g.tour_length(tour), before - gain, 1e-9);
    }
}

TEST(TwoOpt, PreservesNodeSet) {
    const auto pts = random_points(25, 9);
    const DenseGraph g = DenseGraph::euclidean(pts);
    std::vector<std::size_t> tour(pts.size());
    std::iota(tour.begin(), tour.end(), std::size_t{0});
    two_opt(g, tour);
    const std::set<std::size_t> s(tour.begin(), tour.end());
    EXPECT_EQ(s.size(), pts.size());
}

TEST(TwoOpt, SmallToursUntouched) {
    const DenseGraph g(3);
    std::vector<std::size_t> tour{0, 1, 2};
    EXPECT_EQ(two_opt(g, tour), 0.0);
    EXPECT_EQ(tour, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(OrOpt, RelocatesProfitableSegment) {
    // Points on a line; tour visits 4 out of order: 0 1 2 4 3 5 -> or-opt
    // should recover the sweep order (or an equally short tour).
    std::vector<geom::Vec2> pts;
    for (int i = 0; i < 6; ++i) pts.push_back({static_cast<double>(i), 0.0});
    const DenseGraph g = DenseGraph::euclidean(pts);
    std::vector<std::size_t> tour{0, 1, 2, 4, 3, 5};
    const double before = g.tour_length(tour);
    or_opt(g, tour);
    EXPECT_LE(g.tour_length(tour), before);
    EXPECT_NEAR(g.tour_length(tour), 10.0, 1e-9);
}

TEST(OrOpt, NeverLengthensAndKeepsSet) {
    for (std::uint64_t seed : {5u, 6u, 7u}) {
        const auto pts = random_points(20, seed);
        const DenseGraph g = DenseGraph::euclidean(pts);
        std::vector<std::size_t> tour(pts.size());
        std::iota(tour.begin(), tour.end(), std::size_t{0});
        const double before = g.tour_length(tour);
        const double gain = or_opt(g, tour);
        EXPECT_GE(gain, 0.0);
        EXPECT_NEAR(g.tour_length(tour), before - gain, 1e-9);
        const std::set<std::size_t> s(tour.begin(), tour.end());
        EXPECT_EQ(s.size(), pts.size());
        EXPECT_EQ(tour.front(), 0u);  // starting node preserved
    }
}

TEST(CheapestInsertion, EmptyAndSingleTour) {
    DenseGraph g(3);
    g.set_weight(0, 1, 2.0);
    g.set_weight(0, 2, 3.0);
    g.set_weight(1, 2, 4.0);
    const auto e = cheapest_insertion(g, {}, 1);
    EXPECT_EQ(e.position, 0u);
    EXPECT_DOUBLE_EQ(e.delta, 0.0);
    const auto s = cheapest_insertion(g, {0}, 2);
    EXPECT_DOUBLE_EQ(s.delta, 6.0);
}

TEST(CheapestInsertion, PicksBestEdge) {
    // Line 0---10, insert point at x=5: delta 0 on that edge.
    const std::vector<geom::Vec2> pts{{0.0, 0.0}, {10.0, 0.0}, {5.0, 0.0},
                                      {5.0, 10.0}};
    const DenseGraph g = DenseGraph::euclidean(pts);
    const std::vector<std::size_t> tour{0, 1};
    const auto ins = cheapest_insertion(g, tour, 2);
    EXPECT_NEAR(ins.delta, 0.0, 1e-12);
    // Point off the line costs the detour.
    const auto far = cheapest_insertion(g, tour, 3);
    EXPECT_GT(far.delta, 10.0);
}

TEST(RemovalDelta, InverseOfInsertion) {
    const auto pts = random_points(10, 12);
    const DenseGraph g = DenseGraph::euclidean(pts);
    std::vector<std::size_t> tour{0, 1, 2, 3, 4, 5};
    const double len = g.tour_length(tour);
    for (std::size_t pos = 0; pos < tour.size(); ++pos) {
        std::vector<std::size_t> without = tour;
        without.erase(without.begin() + static_cast<std::ptrdiff_t>(pos));
        EXPECT_NEAR(g.tour_length(without), len + removal_delta(g, tour, pos),
                    1e-9)
            << "pos " << pos;
    }
}

TEST(RemovalDelta, NonPositiveOnMetricGraphs) {
    const auto pts = random_points(15, 13);
    const DenseGraph g = DenseGraph::euclidean(pts);
    std::vector<std::size_t> tour(10);
    std::iota(tour.begin(), tour.end(), std::size_t{0});
    for (std::size_t pos = 0; pos < tour.size(); ++pos) {
        EXPECT_LE(removal_delta(g, tour, pos), 1e-12);
    }
}

TEST(NeighborLists, OrderedByWeightThenIndex) {
    const auto pts = random_points(40, 31);
    const DenseGraph g = DenseGraph::euclidean(pts);
    const auto nb = nearest_neighbor_lists(g, 8);
    ASSERT_EQ(nb.size(), pts.size());
    for (std::size_t i = 0; i < nb.size(); ++i) {
        ASSERT_EQ(nb[i].size(), 8u);
        for (std::size_t t = 0; t < nb[i].size(); ++t) {
            EXPECT_NE(nb[i][t], i);
            if (t > 0) {
                const double prev = g.weight(i, nb[i][t - 1]);
                const double cur = g.weight(i, nb[i][t]);
                EXPECT_TRUE(prev < cur ||
                            (prev == cur && nb[i][t - 1] < nb[i][t]))
                    << "node " << i << " slot " << t;
            }
        }
        // The k-th list entry really is the k-th smallest weight overall.
        std::vector<double> all;
        for (std::size_t j = 0; j < pts.size(); ++j) {
            if (j != i) all.push_back(g.weight(i, j));
        }
        std::sort(all.begin(), all.end());
        EXPECT_EQ(g.weight(i, nb[i].back()), all[7]) << "node " << i;
    }
}

TEST(NeighborLists, KClampedToGraphSize) {
    const auto pts = random_points(5, 32);
    const DenseGraph g = DenseGraph::euclidean(pts);
    const auto nb = nearest_neighbor_lists(g, 50);
    for (const auto& list : nb) EXPECT_EQ(list.size(), 4u);
}

TEST(TwoOptNeighbors, FixesObviousCrossing) {
    const std::vector<geom::Vec2> pts{
        {0.0, 0.0}, {1.0, 0.0}, {1.0, 1.0}, {0.0, 1.0}};
    const DenseGraph g = DenseGraph::euclidean(pts);
    const auto nb = nearest_neighbor_lists(g, 3);
    std::vector<std::size_t> tour{0, 2, 1, 3};
    const double before = g.tour_length(tour);
    const double gain = two_opt_neighbors(g, tour, nb);
    EXPECT_GT(gain, 0.0);
    EXPECT_NEAR(g.tour_length(tour), before - gain, 1e-12);
    EXPECT_NEAR(g.tour_length(tour), 4.0, 1e-12);
}

TEST(TwoOptNeighbors, NeverLengthensKeepsSetAndAnchor) {
    for (std::uint64_t seed : {41u, 42u, 43u, 44u}) {
        const auto pts = random_points(60, seed);
        const DenseGraph g = DenseGraph::euclidean(pts);
        const auto nb = nearest_neighbor_lists(g, 10);
        std::vector<std::size_t> tour(pts.size());
        std::iota(tour.begin(), tour.end(), std::size_t{0});
        const double before = g.tour_length(tour);
        const double gain = two_opt_neighbors(g, tour, nb);
        EXPECT_GE(gain, 0.0);
        EXPECT_NEAR(g.tour_length(tour), before - gain, 1e-9);
        const std::set<std::size_t> s(tour.begin(), tour.end());
        EXPECT_EQ(s.size(), pts.size());
        EXPECT_EQ(tour.front(), 0u);
    }
}

TEST(TwoOptNeighbors, ComparableToFullTwoOpt) {
    // With generous neighbour lists the pruned search should land within a
    // few percent of the full O(n^2) pass on random instances.
    for (std::uint64_t seed : {51u, 52u}) {
        const auto pts = random_points(50, seed);
        const DenseGraph g = DenseGraph::euclidean(pts);
        const auto nb = nearest_neighbor_lists(g, 12);
        std::vector<std::size_t> full(pts.size());
        std::iota(full.begin(), full.end(), std::size_t{0});
        std::vector<std::size_t> pruned = full;
        two_opt(g, full);
        two_opt_neighbors(g, pruned, nb);
        EXPECT_LE(g.tour_length(pruned), 1.10 * g.tour_length(full));
    }
}

TEST(OrOptNeighbors, RelocatesProfitableSegment) {
    std::vector<geom::Vec2> pts;
    for (int i = 0; i < 6; ++i) pts.push_back({static_cast<double>(i), 0.0});
    const DenseGraph g = DenseGraph::euclidean(pts);
    const auto nb = nearest_neighbor_lists(g, 5);
    std::vector<std::size_t> tour{0, 1, 2, 4, 3, 5};
    const double before = g.tour_length(tour);
    or_opt_neighbors(g, tour, nb);
    EXPECT_LE(g.tour_length(tour), before);
    EXPECT_NEAR(g.tour_length(tour), 10.0, 1e-9);
}

TEST(OrOptNeighbors, NeverLengthensKeepsSetAndAnchor) {
    for (std::uint64_t seed : {61u, 62u, 63u}) {
        const auto pts = random_points(45, seed);
        const DenseGraph g = DenseGraph::euclidean(pts);
        const auto nb = nearest_neighbor_lists(g, 10);
        std::vector<std::size_t> tour(pts.size());
        std::iota(tour.begin(), tour.end(), std::size_t{0});
        const double before = g.tour_length(tour);
        const double gain = or_opt_neighbors(g, tour, nb);
        EXPECT_GE(gain, 0.0);
        EXPECT_NEAR(g.tour_length(tour), before - gain, 1e-9);
        const std::set<std::size_t> s(tour.begin(), tour.end());
        EXPECT_EQ(s.size(), pts.size());
        EXPECT_EQ(tour.front(), 0u);
    }
}

TEST(RemovalDelta, PairTour) {
    DenseGraph g(2);
    g.set_weight(0, 1, 5.0);
    const std::vector<std::size_t> tour{0, 1};
    EXPECT_DOUBLE_EQ(removal_delta(g, tour, 0), -10.0);
    EXPECT_DOUBLE_EQ(removal_delta(g, tour, 1), -10.0);
}

}  // namespace
}  // namespace uavdc::graph
