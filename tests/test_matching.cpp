#include "uavdc/graph/matching.hpp"

#include <gtest/gtest.h>

#include "uavdc/util/check.hpp"

#include <numeric>
#include <set>
#include <vector>

#include "uavdc/util/rng.hpp"

namespace uavdc::graph {
namespace {

DenseGraph random_euclidean(int n, std::uint64_t seed) {
    util::Rng rng(seed);
    std::vector<geom::Vec2> pts;
    for (int i = 0; i < n; ++i) {
        pts.push_back({rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)});
    }
    return DenseGraph::euclidean(pts);
}

void check_perfect(const Matching& m, const std::vector<std::size_t>& nodes) {
    std::set<std::size_t> seen;
    for (const auto& [u, v] : m) {
        EXPECT_NE(u, v);
        EXPECT_TRUE(seen.insert(u).second) << "node matched twice: " << u;
        EXPECT_TRUE(seen.insert(v).second) << "node matched twice: " << v;
    }
    EXPECT_EQ(seen.size(), nodes.size());
    for (std::size_t n : nodes) EXPECT_TRUE(seen.count(n));
}

TEST(Matching, EmptySet) {
    const DenseGraph g(4);
    EXPECT_TRUE(exact_min_matching(g, {}).empty());
    EXPECT_TRUE(greedy_min_matching(g, {}).empty());
}

TEST(Matching, OddSetThrows) {
    const DenseGraph g(5);
    EXPECT_THROW(exact_min_matching(g, {0, 1, 2}), util::ContractViolation);
    EXPECT_THROW(greedy_min_matching(g, {0, 1, 2}), util::ContractViolation);
    EXPECT_THROW(min_weight_matching(g, {0}), util::ContractViolation);
}

TEST(Matching, PairOfNodes) {
    DenseGraph g(2);
    g.set_weight(0, 1, 4.2);
    const auto m = exact_min_matching(g, {0, 1});
    ASSERT_EQ(m.size(), 1u);
    EXPECT_DOUBLE_EQ(matching_weight(g, m), 4.2);
}

TEST(Matching, ExactFindsOptimalOnKnownInstance) {
    // 4 points on a line at 0, 1, 10, 11: optimal pairs (0,1) and (10,11)
    // with weight 2; pairing across the gap costs >= 18.
    DenseGraph g(4);
    const double xs[] = {0.0, 1.0, 10.0, 11.0};
    for (std::size_t i = 0; i < 4; ++i) {
        for (std::size_t j = i + 1; j < 4; ++j) {
            g.set_weight(i, j, std::abs(xs[i] - xs[j]));
        }
    }
    const auto m = exact_min_matching(g, {0, 1, 2, 3});
    EXPECT_DOUBLE_EQ(matching_weight(g, m), 2.0);
    check_perfect(m, {0, 1, 2, 3});
}

TEST(Matching, ExactBeatsOrEqualsGreedyRandom) {
    for (std::uint64_t seed : {11u, 12u, 13u, 14u}) {
        const DenseGraph g = random_euclidean(12, seed);
        std::vector<std::size_t> nodes(12);
        std::iota(nodes.begin(), nodes.end(), std::size_t{0});
        const auto exact = exact_min_matching(g, nodes);
        const auto greedy = greedy_min_matching(g, nodes);
        check_perfect(exact, nodes);
        check_perfect(greedy, nodes);
        EXPECT_LE(matching_weight(g, exact),
                  matching_weight(g, greedy) + 1e-9)
            << "seed " << seed;
    }
}

TEST(Matching, GreedyWithinFactorOfExactOnSmallRandom) {
    // Greedy + 2-swap should stay close to optimal on Euclidean instances.
    for (std::uint64_t seed : {21u, 22u, 23u}) {
        const DenseGraph g = random_euclidean(14, seed);
        std::vector<std::size_t> nodes(14);
        std::iota(nodes.begin(), nodes.end(), std::size_t{0});
        const double we = matching_weight(g, exact_min_matching(g, nodes));
        const double wg = matching_weight(g, greedy_min_matching(g, nodes));
        EXPECT_LE(wg, 1.5 * we + 1e-9) << "seed " << seed;
    }
}

TEST(Matching, GreedyHandlesLargeSets) {
    const DenseGraph g = random_euclidean(200, 31);
    std::vector<std::size_t> nodes(200);
    std::iota(nodes.begin(), nodes.end(), std::size_t{0});
    const auto m = greedy_min_matching(g, nodes);
    check_perfect(m, nodes);
    EXPECT_GT(matching_weight(g, m), 0.0);
}

TEST(Matching, DispatchUsesExactBelowLimit) {
    const DenseGraph g = random_euclidean(10, 41);
    std::vector<std::size_t> nodes(10);
    std::iota(nodes.begin(), nodes.end(), std::size_t{0});
    const auto dispatched = min_weight_matching(g, nodes, 18);
    const auto exact = exact_min_matching(g, nodes);
    EXPECT_NEAR(matching_weight(g, dispatched), matching_weight(g, exact),
                1e-12);
}

TEST(Matching, DispatchHandlesSubsetsOfLargerGraph) {
    const DenseGraph g = random_euclidean(30, 51);
    const std::vector<std::size_t> nodes{3, 7, 12, 25};
    const auto m = min_weight_matching(g, nodes);
    check_perfect(m, nodes);
}

TEST(Matching, ExactTooLargeThrows) {
    const DenseGraph g(30);
    std::vector<std::size_t> nodes(24);
    std::iota(nodes.begin(), nodes.end(), std::size_t{0});
    EXPECT_THROW(exact_min_matching(g, nodes), util::ContractViolation);
}

}  // namespace
}  // namespace uavdc::graph
