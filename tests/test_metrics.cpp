#include "uavdc/core/metrics.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"
#include "uavdc/core/algorithm3.hpp"
#include "uavdc/core/evaluate.hpp"

namespace uavdc::core {
namespace {

using testing::manual_instance;
using testing::small_instance;

TEST(Metrics, EmptyPlan) {
    const auto inst = manual_instance({{{50.0, 50.0}, 300.0}});
    const auto m = compute_metrics(inst, {});
    EXPECT_DOUBLE_EQ(m.collected_mb, 0.0);
    EXPECT_DOUBLE_EQ(m.hover_energy_j, 0.0);
    EXPECT_DOUBLE_EQ(m.tour_length_m, 0.0);
    EXPECT_EQ(m.devices_missed, 1);
    EXPECT_DOUBLE_EQ(m.jain_fairness, 0.0);
}

TEST(Metrics, SingleStopValues) {
    // Depot (0,0), device at (30,40) with 300 MB -> 2 s dwell, 100 m tour.
    const auto inst = manual_instance({{{30.0, 40.0}, 300.0}});
    model::FlightPlan plan;
    plan.stops.push_back({{30.0, 40.0}, 2.0, -1});
    const auto m = compute_metrics(inst, plan);
    EXPECT_DOUBLE_EQ(m.collected_mb, 300.0);
    EXPECT_DOUBLE_EQ(m.collected_fraction, 1.0);
    EXPECT_DOUBLE_EQ(m.hover_energy_j, 300.0);
    EXPECT_DOUBLE_EQ(m.travel_energy_j, 10000.0);  // 100 m * 100 J/m
    EXPECT_NEAR(m.hover_fraction, 300.0 / 10300.0, 1e-12);
    EXPECT_DOUBLE_EQ(m.tour_length_m, 100.0);
    EXPECT_DOUBLE_EQ(m.tour_time_s, 12.0);
    EXPECT_EQ(m.devices_drained, 1);
    EXPECT_EQ(m.devices_missed, 0);
    EXPECT_DOUBLE_EQ(m.jain_fairness, 1.0);
    // Drained 5 s out + 2 s upload = 7 s after departure.
    EXPECT_DOUBLE_EQ(m.mean_drain_latency_s, 7.0);
    EXPECT_DOUBLE_EQ(m.max_drain_latency_s, 7.0);
    EXPECT_DOUBLE_EQ(m.energy_per_gb_j, 10300.0 / 0.3);
}

TEST(Metrics, LatencyOrdersByTourPosition) {
    // Two devices on opposite sides; the second is drained later.
    const auto inst = manual_instance(
        {{{30.0, 40.0}, 150.0}, {{120.0, 160.0}, 150.0}});
    model::FlightPlan plan;
    plan.stops.push_back({{30.0, 40.0}, 1.0, -1});
    plan.stops.push_back({{120.0, 160.0}, 1.0, -1});
    const auto m = compute_metrics(inst, plan);
    EXPECT_EQ(m.devices_drained, 2);
    EXPECT_GT(m.max_drain_latency_s, m.mean_drain_latency_s);
}

TEST(Metrics, FairnessDropsWhenOneDeviceMissed) {
    const auto inst = manual_instance(
        {{{30.0, 40.0}, 150.0}, {{180.0, 180.0}, 150.0}});
    model::FlightPlan plan;
    plan.stops.push_back({{30.0, 40.0}, 1.0, -1});  // only the first device
    const auto m = compute_metrics(inst, plan);
    EXPECT_EQ(m.devices_missed, 1);
    EXPECT_NEAR(m.jain_fairness, 0.5, 1e-12);  // one of two served
    EXPECT_NEAR(m.collected_fraction, 0.5, 1e-12);
}

TEST(Metrics, PartialCollectionFairness) {
    // Both devices half-served: perfectly fair.
    const auto inst = manual_instance(
        {{{40.0, 50.0}, 300.0}, {{60.0, 50.0}, 300.0}});
    model::FlightPlan plan;
    plan.stops.push_back({{50.0, 50.0}, 1.0, -1});  // 150 MB each
    const auto m = compute_metrics(inst, plan);
    EXPECT_DOUBLE_EQ(m.jain_fairness, 1.0);
    EXPECT_EQ(m.devices_drained, 0);
    EXPECT_EQ(m.devices_touched, 2);
}

TEST(Metrics, AgreesWithEvaluateOnVolume) {
    for (std::uint64_t seed : {71u, 72u, 73u}) {
        const auto inst = small_instance(30, 300.0, seed);
        Algorithm3Config cfg;
        cfg.candidates.delta_m = 20.0;
        cfg.k = 2;
        const auto res = PartialCollectionPlanner(cfg).plan(inst);
        const auto ev = evaluate_plan(inst, res.plan);
        const auto m = compute_metrics(inst, res.plan);
        EXPECT_NEAR(m.collected_mb, ev.collected_mb, 1e-6);
        EXPECT_EQ(m.devices_drained, ev.devices_drained);
        EXPECT_EQ(m.devices_touched, ev.devices_touched);
    }
}

TEST(Metrics, MeanLegIncludesDepotLegs) {
    const auto inst = manual_instance({{{100.0, 0.0}, 150.0}});
    model::FlightPlan plan;
    plan.stops.push_back({{100.0, 0.0}, 1.0, -1});
    plan.stops.push_back({{100.0, 100.0}, 1.0, -1});
    const auto m = compute_metrics(inst, plan);
    // Legs: 100 + 100 + sqrt(2)*100, divided by 3 legs.
    EXPECT_NEAR(m.mean_leg_m, (200.0 + std::sqrt(2.0) * 100.0) / 3.0, 1e-9);
}

TEST(Metrics, ZeroDataInstanceSafe) {
    const auto inst = manual_instance({{{50.0, 50.0}, 0.0}});
    model::FlightPlan plan;
    plan.stops.push_back({{50.0, 50.0}, 1.0, -1});
    const auto m = compute_metrics(inst, plan);
    EXPECT_DOUBLE_EQ(m.collected_fraction, 0.0);
    EXPECT_DOUBLE_EQ(m.energy_per_gb_j, 0.0);
    EXPECT_EQ(m.devices_missed, 0);  // nothing to miss
}

TEST(LatencyHistogram, EmptyIsAllZero) {
    LatencyHistogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.mean_s(), 0.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
    EXPECT_DOUBLE_EQ(h.min_s(), 0.0);
    EXPECT_DOUBLE_EQ(h.max_s(), 0.0);
}

TEST(LatencyHistogram, SingleSampleQuantilesCollapse) {
    LatencyHistogram h;
    h.record(0.025);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_DOUBLE_EQ(h.mean_s(), 0.025);
    // Every quantile of a one-sample distribution is that sample (the
    // bucketed estimate is clamped to the observed [min, max]).
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.025);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.025);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 0.025);
}

TEST(LatencyHistogram, QuantilesAreMonotoneAndBracketed) {
    LatencyHistogram h;
    for (int i = 1; i <= 1000; ++i) {
        h.record(static_cast<double>(i) * 1e-4);  // 0.1 ms .. 100 ms
    }
    EXPECT_EQ(h.count(), 1000u);
    const double p50 = h.quantile(0.50);
    const double p95 = h.quantile(0.95);
    const double p99 = h.quantile(0.99);
    EXPECT_LE(p50, p95);
    EXPECT_LE(p95, p99);
    EXPECT_GE(p50, h.min_s());
    EXPECT_LE(p99, h.max_s());
    // Log-bucketed estimates resolve to a few percent: true p50 = 50 ms.
    EXPECT_NEAR(p50, 0.050, 0.050 * 0.15);
    EXPECT_NEAR(p99, 0.099, 0.099 * 0.15);
    EXPECT_NEAR(h.mean_s(), 0.05005, 1e-6);
}

TEST(LatencyHistogram, OutOfRangeSamplesClampToEdgeBuckets) {
    LatencyHistogram h;
    h.record(1e-9);  // below the 1 us bottom bucket
    h.record(1e6);   // above the ~1000 s top bucket
    EXPECT_EQ(h.count(), 2u);
    EXPECT_DOUBLE_EQ(h.min_s(), 1e-9);
    EXPECT_DOUBLE_EQ(h.max_s(), 1e6);
    EXPECT_GE(h.quantile(0.99), h.quantile(0.01));
}

TEST(LatencyHistogram, MergeEqualsCombinedRecording) {
    LatencyHistogram a;
    LatencyHistogram b;
    LatencyHistogram both;
    for (int i = 1; i <= 100; ++i) {
        const double v = static_cast<double>(i) * 1e-3;
        ((i % 2 == 0) ? a : b).record(v);
        both.record(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), both.count());
    EXPECT_DOUBLE_EQ(a.mean_s(), both.mean_s());
    EXPECT_DOUBLE_EQ(a.min_s(), both.min_s());
    EXPECT_DOUBLE_EQ(a.max_s(), both.max_s());
    for (const double q : {0.1, 0.5, 0.9, 0.99}) {
        EXPECT_DOUBLE_EQ(a.quantile(q), both.quantile(q));
    }
}

}  // namespace
}  // namespace uavdc::core
