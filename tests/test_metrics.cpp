#include "uavdc/core/metrics.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"
#include "uavdc/core/algorithm3.hpp"
#include "uavdc/core/evaluate.hpp"

namespace uavdc::core {
namespace {

using testing::manual_instance;
using testing::small_instance;

TEST(Metrics, EmptyPlan) {
    const auto inst = manual_instance({{{50.0, 50.0}, 300.0}});
    const auto m = compute_metrics(inst, {});
    EXPECT_DOUBLE_EQ(m.collected_mb, 0.0);
    EXPECT_DOUBLE_EQ(m.hover_energy_j, 0.0);
    EXPECT_DOUBLE_EQ(m.tour_length_m, 0.0);
    EXPECT_EQ(m.devices_missed, 1);
    EXPECT_DOUBLE_EQ(m.jain_fairness, 0.0);
}

TEST(Metrics, SingleStopValues) {
    // Depot (0,0), device at (30,40) with 300 MB -> 2 s dwell, 100 m tour.
    const auto inst = manual_instance({{{30.0, 40.0}, 300.0}});
    model::FlightPlan plan;
    plan.stops.push_back({{30.0, 40.0}, 2.0, -1});
    const auto m = compute_metrics(inst, plan);
    EXPECT_DOUBLE_EQ(m.collected_mb, 300.0);
    EXPECT_DOUBLE_EQ(m.collected_fraction, 1.0);
    EXPECT_DOUBLE_EQ(m.hover_energy_j, 300.0);
    EXPECT_DOUBLE_EQ(m.travel_energy_j, 10000.0);  // 100 m * 100 J/m
    EXPECT_NEAR(m.hover_fraction, 300.0 / 10300.0, 1e-12);
    EXPECT_DOUBLE_EQ(m.tour_length_m, 100.0);
    EXPECT_DOUBLE_EQ(m.tour_time_s, 12.0);
    EXPECT_EQ(m.devices_drained, 1);
    EXPECT_EQ(m.devices_missed, 0);
    EXPECT_DOUBLE_EQ(m.jain_fairness, 1.0);
    // Drained 5 s out + 2 s upload = 7 s after departure.
    EXPECT_DOUBLE_EQ(m.mean_drain_latency_s, 7.0);
    EXPECT_DOUBLE_EQ(m.max_drain_latency_s, 7.0);
    EXPECT_DOUBLE_EQ(m.energy_per_gb_j, 10300.0 / 0.3);
}

TEST(Metrics, LatencyOrdersByTourPosition) {
    // Two devices on opposite sides; the second is drained later.
    const auto inst = manual_instance(
        {{{30.0, 40.0}, 150.0}, {{120.0, 160.0}, 150.0}});
    model::FlightPlan plan;
    plan.stops.push_back({{30.0, 40.0}, 1.0, -1});
    plan.stops.push_back({{120.0, 160.0}, 1.0, -1});
    const auto m = compute_metrics(inst, plan);
    EXPECT_EQ(m.devices_drained, 2);
    EXPECT_GT(m.max_drain_latency_s, m.mean_drain_latency_s);
}

TEST(Metrics, FairnessDropsWhenOneDeviceMissed) {
    const auto inst = manual_instance(
        {{{30.0, 40.0}, 150.0}, {{180.0, 180.0}, 150.0}});
    model::FlightPlan plan;
    plan.stops.push_back({{30.0, 40.0}, 1.0, -1});  // only the first device
    const auto m = compute_metrics(inst, plan);
    EXPECT_EQ(m.devices_missed, 1);
    EXPECT_NEAR(m.jain_fairness, 0.5, 1e-12);  // one of two served
    EXPECT_NEAR(m.collected_fraction, 0.5, 1e-12);
}

TEST(Metrics, PartialCollectionFairness) {
    // Both devices half-served: perfectly fair.
    const auto inst = manual_instance(
        {{{40.0, 50.0}, 300.0}, {{60.0, 50.0}, 300.0}});
    model::FlightPlan plan;
    plan.stops.push_back({{50.0, 50.0}, 1.0, -1});  // 150 MB each
    const auto m = compute_metrics(inst, plan);
    EXPECT_DOUBLE_EQ(m.jain_fairness, 1.0);
    EXPECT_EQ(m.devices_drained, 0);
    EXPECT_EQ(m.devices_touched, 2);
}

TEST(Metrics, AgreesWithEvaluateOnVolume) {
    for (std::uint64_t seed : {71u, 72u, 73u}) {
        const auto inst = small_instance(30, 300.0, seed);
        Algorithm3Config cfg;
        cfg.candidates.delta_m = 20.0;
        cfg.k = 2;
        const auto res = PartialCollectionPlanner(cfg).plan(inst);
        const auto ev = evaluate_plan(inst, res.plan);
        const auto m = compute_metrics(inst, res.plan);
        EXPECT_NEAR(m.collected_mb, ev.collected_mb, 1e-6);
        EXPECT_EQ(m.devices_drained, ev.devices_drained);
        EXPECT_EQ(m.devices_touched, ev.devices_touched);
    }
}

TEST(Metrics, MeanLegIncludesDepotLegs) {
    const auto inst = manual_instance({{{100.0, 0.0}, 150.0}});
    model::FlightPlan plan;
    plan.stops.push_back({{100.0, 0.0}, 1.0, -1});
    plan.stops.push_back({{100.0, 100.0}, 1.0, -1});
    const auto m = compute_metrics(inst, plan);
    // Legs: 100 + 100 + sqrt(2)*100, divided by 3 legs.
    EXPECT_NEAR(m.mean_leg_m, (200.0 + std::sqrt(2.0) * 100.0) / 3.0, 1e-9);
}

TEST(Metrics, ZeroDataInstanceSafe) {
    const auto inst = manual_instance({{{50.0, 50.0}, 0.0}});
    model::FlightPlan plan;
    plan.stops.push_back({{50.0, 50.0}, 1.0, -1});
    const auto m = compute_metrics(inst, plan);
    EXPECT_DOUBLE_EQ(m.collected_fraction, 0.0);
    EXPECT_DOUBLE_EQ(m.energy_per_gb_j, 0.0);
    EXPECT_EQ(m.devices_missed, 0);  // nothing to miss
}

}  // namespace
}  // namespace uavdc::core
