#include <gtest/gtest.h>

#include "test_util.hpp"
#include "uavdc/model/instance.hpp"
#include "uavdc/model/plan.hpp"
#include "uavdc/model/uav.hpp"

namespace uavdc::model {
namespace {

TEST(UavConfig, PaperDefaults) {
    const UavConfig uav;
    EXPECT_DOUBLE_EQ(uav.energy_j, 3.0e5);
    EXPECT_DOUBLE_EQ(uav.speed_mps, 10.0);
    EXPECT_DOUBLE_EQ(uav.hover_power_w, 150.0);
    EXPECT_DOUBLE_EQ(uav.travel_rate, 100.0);
    EXPECT_EQ(uav.travel_energy_model, TravelEnergyModel::kPerMeter);
    EXPECT_DOUBLE_EQ(uav.coverage_radius_m, 50.0);
    EXPECT_DOUBLE_EQ(uav.bandwidth_mbps, 150.0);
    EXPECT_TRUE(uav.valid());
}

TEST(UavConfig, EnergyArithmetic) {
    const UavConfig uav;
    EXPECT_DOUBLE_EQ(uav.travel_time(100.0), 10.0);
    // Paper-literal per-metre model: 100 m * 100 J/m.
    EXPECT_DOUBLE_EQ(uav.travel_energy(100.0), 10000.0);
    EXPECT_DOUBLE_EQ(uav.hover_energy(10.0), 1500.0);
    EXPECT_DOUBLE_EQ(uav.travel_energy_per_meter(), 100.0);
    EXPECT_DOUBLE_EQ(uav.travel_power_w(), 1000.0);
    UavConfig per_second = uav;
    per_second.travel_energy_model = TravelEnergyModel::kPerSecond;
    EXPECT_DOUBLE_EQ(per_second.travel_energy(100.0), 1000.0);
    EXPECT_DOUBLE_EQ(per_second.travel_energy_per_meter(), 10.0);
    EXPECT_DOUBLE_EQ(per_second.travel_power_w(), 100.0);
}

TEST(UavConfig, CoverageFromAltitude) {
    EXPECT_DOUBLE_EQ(UavConfig::coverage_from_altitude(50.0, 30.0), 40.0);
    EXPECT_DOUBLE_EQ(UavConfig::coverage_from_altitude(50.0, 0.0), 50.0);
    EXPECT_DOUBLE_EQ(UavConfig::coverage_from_altitude(30.0, 50.0), 0.0);
}

TEST(UavConfig, InvalidConfigsDetected) {
    UavConfig uav;
    uav.energy_j = 0.0;
    EXPECT_FALSE(uav.valid());
    uav = UavConfig{};
    uav.travel_rate = 0.0;
    EXPECT_FALSE(uav.valid());
    uav = UavConfig{};
    uav.bandwidth_mbps = -1.0;
    EXPECT_FALSE(uav.valid());
}

TEST(Device, UploadTime) {
    const Device d{0, {0.0, 0.0}, 300.0};
    EXPECT_DOUBLE_EQ(d.upload_time(150.0), 2.0);
    EXPECT_DOUBLE_EQ(d.upload_time(0.0), 0.0);
}

TEST(Instance, TotalsAndPositions) {
    const auto inst = testing::manual_instance(
        {{{10.0, 10.0}, 100.0}, {{20.0, 20.0}, 250.0}});
    EXPECT_DOUBLE_EQ(inst.total_data_mb(), 350.0);
    const auto pos = inst.device_positions();
    ASSERT_EQ(pos.size(), 2u);
    EXPECT_EQ(pos[1], geom::Vec2(20.0, 20.0));
}

TEST(Instance, ValidateRejectsBadData) {
    auto inst = testing::manual_instance({{{10.0, 10.0}, 100.0}});
    inst.devices[0].data_mb = -1.0;
    EXPECT_THROW(inst.validate(), std::invalid_argument);

    inst = testing::manual_instance({{{10.0, 10.0}, 100.0}});
    inst.devices[0].pos = {1e6, 1e6};
    EXPECT_THROW(inst.validate(), std::invalid_argument);

    inst = testing::manual_instance({{{10.0, 10.0}, 100.0}});
    inst.devices[0].id = 5;
    EXPECT_THROW(inst.validate(), std::invalid_argument);

    inst = testing::manual_instance({{{10.0, 10.0}, 100.0}});
    inst.uav.speed_mps = 0.0;
    EXPECT_THROW(inst.validate(), std::invalid_argument);
}

TEST(FlightPlan, EmptyPlan) {
    const FlightPlan plan;
    const UavConfig uav;
    EXPECT_TRUE(plan.empty());
    EXPECT_DOUBLE_EQ(plan.travel_length({0.0, 0.0}), 0.0);
    EXPECT_DOUBLE_EQ(plan.hover_time(), 0.0);
    EXPECT_DOUBLE_EQ(plan.total_energy({0.0, 0.0}, uav), 0.0);
    EXPECT_TRUE(plan.feasible({0.0, 0.0}, uav));
}

TEST(FlightPlan, SingleStopOutAndBack) {
    FlightPlan plan;
    plan.stops.push_back({{30.0, 40.0}, 20.0, -1});
    const UavConfig uav;
    const geom::Vec2 depot{0.0, 0.0};
    EXPECT_DOUBLE_EQ(plan.travel_length(depot), 100.0);
    EXPECT_DOUBLE_EQ(plan.hover_time(), 20.0);
    const auto e = plan.energy(depot, uav);
    EXPECT_DOUBLE_EQ(e.travel_m, 100.0);
    EXPECT_DOUBLE_EQ(e.travel_s, 10.0);
    EXPECT_DOUBLE_EQ(e.travel_j, 10000.0);  // per-metre: 100 m * 100 J/m
    EXPECT_DOUBLE_EQ(e.hover_s, 20.0);
    EXPECT_DOUBLE_EQ(e.hover_j, 3000.0);
    EXPECT_DOUBLE_EQ(e.total_j(), 13000.0);
    EXPECT_DOUBLE_EQ(e.total_s(), 30.0);
}

TEST(FlightPlan, MultiStopLength) {
    FlightPlan plan;
    plan.stops.push_back({{10.0, 0.0}, 1.0, -1});
    plan.stops.push_back({{10.0, 10.0}, 2.0, -1});
    const geom::Vec2 depot{0.0, 0.0};
    EXPECT_NEAR(plan.travel_length(depot),
                10.0 + 10.0 + std::sqrt(200.0), 1e-12);
    EXPECT_DOUBLE_EQ(plan.hover_time(), 3.0);
}

TEST(FlightPlan, FeasibilityBoundary) {
    FlightPlan plan;
    plan.stops.push_back({{30.0, 40.0}, 20.0, -1});
    UavConfig uav;
    uav.energy_j = 13000.0;  // exactly the required energy
    EXPECT_TRUE(plan.feasible({0.0, 0.0}, uav));
    uav.energy_j = 12999.0;
    EXPECT_FALSE(plan.feasible({0.0, 0.0}, uav));
}

}  // namespace
}  // namespace uavdc::model
