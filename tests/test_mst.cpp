#include "uavdc/graph/mst.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "uavdc/util/rng.hpp"

namespace uavdc::graph {
namespace {

/// Union-find for verifying the output forms a spanning tree.
struct Dsu {
    std::vector<std::size_t> parent;
    explicit Dsu(std::size_t n) : parent(n) {
        std::iota(parent.begin(), parent.end(), std::size_t{0});
    }
    std::size_t find(std::size_t x) {
        while (parent[x] != x) x = parent[x] = parent[parent[x]];
        return x;
    }
    bool unite(std::size_t a, std::size_t b) {
        a = find(a);
        b = find(b);
        if (a == b) return false;
        parent[a] = b;
        return true;
    }
};

/// Kruskal reference implementation for cross-checking total weight.
double kruskal_weight(const DenseGraph& g) {
    struct E {
        std::size_t u, v;
        double w;
    };
    std::vector<E> edges;
    for (std::size_t i = 0; i < g.size(); ++i) {
        for (std::size_t j = i + 1; j < g.size(); ++j) {
            edges.push_back({i, j, g.weight(i, j)});
        }
    }
    std::sort(edges.begin(), edges.end(),
              [](const E& a, const E& b) { return a.w < b.w; });
    Dsu dsu(g.size());
    double total = 0.0;
    for (const auto& e : edges) {
        if (dsu.unite(e.u, e.v)) total += e.w;
    }
    return total;
}

DenseGraph random_euclidean(int n, std::uint64_t seed) {
    util::Rng rng(seed);
    std::vector<geom::Vec2> pts;
    for (int i = 0; i < n; ++i) {
        pts.push_back({rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)});
    }
    return DenseGraph::euclidean(pts);
}

TEST(Mst, EmptyAndSingleNode) {
    EXPECT_TRUE(mst_prim(DenseGraph(0)).empty());
    EXPECT_TRUE(mst_prim(DenseGraph(1)).empty());
}

TEST(Mst, TwoNodes) {
    DenseGraph g(2);
    g.set_weight(0, 1, 3.5);
    const auto tree = mst_prim(g);
    ASSERT_EQ(tree.size(), 1u);
    EXPECT_DOUBLE_EQ(tree[0].w, 3.5);
}

TEST(Mst, KnownSmallGraph) {
    // Square with one diagonal shortcut.
    DenseGraph g(4);
    g.set_weight(0, 1, 1.0);
    g.set_weight(1, 2, 2.0);
    g.set_weight(2, 3, 1.0);
    g.set_weight(3, 0, 2.0);
    g.set_weight(0, 2, 1.5);
    g.set_weight(1, 3, 10.0);
    const auto tree = mst_prim(g);
    EXPECT_EQ(tree.size(), 3u);
    EXPECT_DOUBLE_EQ(total_weight(tree), 1.0 + 1.0 + 1.5);
}

TEST(Mst, HasNMinus1EdgesAndSpans) {
    const DenseGraph g = random_euclidean(50, 8);
    const auto tree = mst_prim(g);
    ASSERT_EQ(tree.size(), g.size() - 1);
    Dsu dsu(g.size());
    for (const auto& e : tree) {
        EXPECT_TRUE(dsu.unite(e.u, e.v)) << "cycle in MST output";
    }
    for (std::size_t v = 1; v < g.size(); ++v) {
        EXPECT_EQ(dsu.find(v), dsu.find(0)) << "MST not spanning";
    }
}

TEST(Mst, MatchesKruskalWeight) {
    for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
        const DenseGraph g = random_euclidean(40, seed);
        const auto tree = mst_prim(g);
        EXPECT_NEAR(total_weight(tree), kruskal_weight(g), 1e-9)
            << "seed " << seed;
    }
}

TEST(Mst, EdgeEndpointsOrdered) {
    const DenseGraph g = random_euclidean(20, 33);
    for (const auto& e : mst_prim(g)) {
        EXPECT_LT(e.u, e.v);
        EXPECT_DOUBLE_EQ(e.w, g.weight(e.u, e.v));
    }
}

TEST(Degrees, CountsIncidences) {
    const std::vector<Edge> edges{{0, 1, 1.0}, {1, 2, 1.0}, {1, 3, 1.0}};
    const auto deg = degrees(4, edges);
    EXPECT_EQ(deg, (std::vector<int>{1, 3, 1, 1}));
}

TEST(TotalWeight, SumsEdges) {
    const std::vector<Edge> edges{{0, 1, 1.5}, {1, 2, 2.5}};
    EXPECT_DOUBLE_EQ(total_weight(edges), 4.0);
    EXPECT_DOUBLE_EQ(total_weight({}), 0.0);
}

}  // namespace
}  // namespace uavdc::graph
