#include "uavdc/core/multi_tour.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"
#include "uavdc/core/evaluate.hpp"

namespace uavdc::core {
namespace {

using testing::small_instance;

MultiTourConfig tight_config(int tours) {
    MultiTourConfig cfg;
    cfg.tours = tours;
    cfg.inner.candidates.delta_m = 20.0;
    cfg.inner.k = 2;
    return cfg;
}

TEST(MultiTour, EachSortieIsFeasible) {
    auto inst = small_instance(40, 350.0, 5);
    inst.uav.energy_j = 2.0e4;
    const auto res = plan_multi_tour(inst, tight_config(3));
    EXPECT_GT(res.sorties_used, 0);
    for (const auto& tour : res.tours) {
        EXPECT_TRUE(tour.feasible(inst.depot, inst.uav, 1e-6));
    }
}

TEST(MultiTour, MoreSortiesCollectMore) {
    auto inst = small_instance(40, 350.0, 6);
    inst.uav.energy_j = 4.0e4;  // one sortie can't get everything
    const double one =
        evaluate_multi_tour(inst, plan_multi_tour(inst, tight_config(1)).tours);
    const double three =
        evaluate_multi_tour(inst, plan_multi_tour(inst, tight_config(3)).tours);
    EXPECT_GT(one, 0.0);
    EXPECT_GT(three, one);
    EXPECT_LE(three, inst.total_data_mb() + 1e-6);
}

TEST(MultiTour, PlannedMatchesEvaluation) {
    auto inst = small_instance(35, 320.0, 7);
    inst.uav.energy_j = 1.5e4;
    const auto res = plan_multi_tour(inst, tight_config(2));
    EXPECT_NEAR(res.planned_mb, evaluate_multi_tour(inst, res.tours), 1e-6);
}

TEST(MultiTour, StopsEarlyWhenFieldIsDrained) {
    auto inst = small_instance(15, 200.0, 8);
    inst.uav.energy_j = 1.0e5;  // first sortie drains everything
    const auto res = plan_multi_tour(inst, tight_config(5));
    EXPECT_EQ(res.sorties_used, 1);
    EXPECT_NEAR(res.planned_mb, inst.total_data_mb(), 1e-6);
}

TEST(MultiTour, SecondSortieAvoidsCollectedData) {
    auto inst = small_instance(30, 300.0, 9);
    inst.uav.energy_j = 3.5e4;
    const auto res = plan_multi_tour(inst, tight_config(2));
    ASSERT_EQ(res.sorties_used, 2);
    // Replaying sortie 2 alone on the fresh instance collects at least as
    // much as it contributes after sortie 1 (its targets were residuals).
    const double both = evaluate_multi_tour(inst, res.tours);
    const double first =
        evaluate_multi_tour(inst, {res.tours[0]});
    EXPECT_GT(both, first);
}

TEST(MultiTour, ZeroToursRequested) {
    const auto inst = small_instance(10, 200.0, 10);
    const auto res = plan_multi_tour(inst, tight_config(0));
    EXPECT_EQ(res.sorties_used, 0);
    EXPECT_TRUE(res.tours.empty());
    EXPECT_DOUBLE_EQ(res.planned_mb, 0.0);
}

TEST(MultiTour, EvaluateEmptySequence) {
    const auto inst = small_instance(10, 200.0, 11);
    EXPECT_DOUBLE_EQ(evaluate_multi_tour(inst, {}), 0.0);
}

}  // namespace
}  // namespace uavdc::core
