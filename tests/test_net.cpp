#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <future>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "uavdc/core/planning_context.hpp"
#include "uavdc/io/json.hpp"
#include "uavdc/net/frame.hpp"
#include "uavdc/net/repository.hpp"
#include "uavdc/net/router.hpp"
#include "uavdc/net/signal.hpp"
#include "uavdc/net/socket.hpp"
#include "uavdc/net/tcp_server.hpp"
#include "uavdc/service/plan_service.hpp"
#include "uavdc/service/request.hpp"

#include "test_util.hpp"

namespace uavdc::net {
namespace {

core::PlannerOptions fast_options() {
    core::PlannerOptions opts;
    opts.delta_m = 25.0;
    opts.grasp_iterations = 3;
    return opts;
}

/// A TcpServer on its own thread with an ephemeral port. `stop_and_join`
/// triggers the graceful drain and returns the final counters.
struct ServerHandle {
    std::atomic<bool> stop{false};
    int port{0};
    std::thread thread;
    TcpServer::RunResult result;

    explicit ServerHandle(std::string repo_path = "",
                          std::size_t max_frame = 16u << 20) {
        std::promise<int> port_promise;
        auto port_future = port_promise.get_future();
        TcpServerConfig cfg;
        cfg.port = 0;
        cfg.service.workers = 2;
        cfg.service.defaults = fast_options();
        cfg.repo_path = std::move(repo_path);
        cfg.max_frame_bytes = max_frame;
        cfg.stop = &stop;
        cfg.poll_timeout_ms = 20;
        cfg.on_listening = [&port_promise](int p) {
            port_promise.set_value(p);
        };
        thread = std::thread([this, cfg = std::move(cfg)]() mutable {
            TcpServer server(std::move(cfg));
            result = server.run();
        });
        port = port_future.get();
    }

    TcpServer::RunResult stop_and_join() {
        stop.store(true);
        if (thread.joinable()) thread.join();
        return result;
    }

    ~ServerHandle() { (void)stop_and_join(); }
};

/// Blocking test client: frames out, frames back with a deadline.
struct Client {
    Socket sock;
    FrameDecoder decoder;
    bool eof{false};

    explicit Client(int port) : sock(Socket::connect_tcp("127.0.0.1", port)) {
        sock.set_nodelay(true);
    }

    void send(const std::string& payload, bool length_prefixed) {
        ASSERT_TRUE(sock.write_all(encode_frame(payload, length_prefixed)));
    }

    /// Next frame within `timeout_ms`, or nullopt on timeout/EOF.
    std::optional<Frame> next(int timeout_ms = 10000) {
        for (;;) {
            if (auto f = decoder.next()) return f;
            if (eof) return std::nullopt;
            std::vector<PollEntry> entries;
            entries.push_back(
                {sock.fd(), true, false, false, false, false});
            if (poll_wait(entries, timeout_ms) == 0) return std::nullopt;
            char buf[4096];
            const IoResult r = sock.read_some(buf, sizeof(buf));
            if (r.status == IoStatus::kOk) {
                decoder.feed(buf, r.n);
            } else if (r.status == IoStatus::kEof ||
                       r.status == IoStatus::kError) {
                eof = true;
            }
        }
    }
};

std::string plan_request(const std::string& id, const model::Instance& inst) {
    service::PlanRequest req;
    req.id = id;
    req.planner = "alg2";
    req.instance = inst;
    return service::to_json(req).dump();
}

std::string ref_request(const std::string& id, std::uint64_t fp) {
    service::PlanRequest req;
    req.id = id;
    req.planner = "alg2";
    req.instance_ref = fp;
    return service::to_json(req).dump();
}

TEST(NetServer, PipelinedMixedFramingAllAnswered) {
    ServerHandle server;
    Client client(server.port);

    const auto inst = uavdc::testing::small_instance(10, 200.0, 51);
    const auto fp = core::PlanningContext::instance_fingerprint(inst);

    // One inline registration plus pipelined by-ref requests, alternating
    // framings on the same connection — all written before any read.
    client.send(plan_request("r0", inst), /*length_prefixed=*/false);
    for (int i = 1; i <= 6; ++i) {
        client.send(ref_request("r" + std::to_string(i), fp), i % 2 == 0);
    }

    std::map<std::string, io::Json> responses;
    std::map<std::string, bool> framing;
    for (int i = 0; i < 7; ++i) {
        auto f = client.next();
        ASSERT_TRUE(f.has_value()) << "response " << i << " missing";
        ASSERT_FALSE(f->malformed);
        const io::Json doc = io::Json::parse(f->payload);
        responses[doc.at("id").as_string()] = doc;
        framing[doc.at("id").as_string()] = f->length_prefixed;
    }
    ASSERT_EQ(responses.size(), 7u);
    std::string first_result;
    for (int i = 0; i <= 6; ++i) {
        const std::string id = "r" + std::to_string(i);
        ASSERT_TRUE(responses.count(id)) << id;
        EXPECT_EQ(responses[id].at("status").as_string(), "ok") << id;
        // Responses are framed the way their request was.
        EXPECT_EQ(framing[id], i >= 1 && i % 2 == 0) << id;
        // Same instance, same options: every result is byte-identical.
        const std::string key = responses[id].at("result").dump();
        if (first_result.empty()) {
            first_result = key;
        } else {
            EXPECT_EQ(key, first_result) << id;
        }
    }

    const auto result = server.stop_and_join();
    EXPECT_EQ(result.transport.requests, 7u);
    EXPECT_EQ(result.transport.responses, 7u);
    EXPECT_EQ(result.transport.frames_malformed, 0u);
    EXPECT_EQ(result.service.internal_errors, 0u);
}

TEST(NetServer, MalformedPayloadAnswersBadRequestWithoutClosing) {
    ServerHandle server;
    Client client(server.port);

    // Unparseable JSON: bad_request, connection survives.
    client.send("this is not json", false);
    auto f = client.next();
    ASSERT_TRUE(f.has_value());
    io::Json doc = io::Json::parse(f->payload);
    EXPECT_EQ(doc.at("status").as_string(), "bad_request");

    // Parseable JSON that is not a valid request: same contract.
    client.send(R"({"id":"q","planner":"alg2"})", true);
    f = client.next();
    ASSERT_TRUE(f.has_value());
    doc = io::Json::parse(f->payload);
    EXPECT_EQ(doc.at("id").as_string(), "q");
    EXPECT_EQ(doc.at("status").as_string(), "bad_request");

    // Framing-level damage: diagnostic response, then resync.
    ASSERT_TRUE(client.sock.write_all("$nope\n"));
    f = client.next();
    ASSERT_TRUE(f.has_value());
    doc = io::Json::parse(f->payload);
    EXPECT_EQ(doc.at("status").as_string(), "bad_request");

    // The connection still serves real work.
    const auto inst = uavdc::testing::small_instance(8, 180.0, 52);
    client.send(plan_request("ok1", inst), false);
    f = client.next();
    ASSERT_TRUE(f.has_value());
    doc = io::Json::parse(f->payload);
    EXPECT_EQ(doc.at("id").as_string(), "ok1");
    EXPECT_EQ(doc.at("status").as_string(), "ok");

    const auto result = server.stop_and_join();
    EXPECT_EQ(result.transport.frames_malformed, 1u);
    EXPECT_EQ(result.transport.requests, 1u);
}

TEST(NetServer, DrainBarrierAnswersAfterPipelinedRequests) {
    ServerHandle server;
    Client client(server.port);

    const auto inst = uavdc::testing::small_instance(10, 200.0, 53);
    const auto fp = core::PlanningContext::instance_fingerprint(inst);
    client.send(plan_request("p", inst), false);
    for (int i = 0; i < 8; ++i) {
        client.send(ref_request("r" + std::to_string(i), fp), false);
    }
    client.send(R"({"op":"drain","id":"barrier"})", false);

    // The drain reply must arrive after all nine plan responses.
    std::vector<std::string> order;
    for (int i = 0; i < 10; ++i) {
        auto f = client.next();
        ASSERT_TRUE(f.has_value()) << "frame " << i;
        order.push_back(io::Json::parse(f->payload).at("id").as_string());
    }
    EXPECT_EQ(order.back(), "barrier");
    EXPECT_EQ(order.size(), 10u);

    // A drain on an idle connection answers immediately.
    client.send(R"({"op":"drain","id":"idle"})", true);
    auto f = client.next();
    ASSERT_TRUE(f.has_value());
    const io::Json doc = io::Json::parse(f->payload);
    EXPECT_EQ(doc.at("id").as_string(), "idle");
    EXPECT_EQ(doc.at("op").as_string(), "drain");
    EXPECT_TRUE(f->length_prefixed);
}

TEST(NetServer, StatsVerbEmbedsTransportCounters) {
    ServerHandle server;
    Client client(server.port);

    const auto inst = uavdc::testing::small_instance(8, 180.0, 54);
    client.send(plan_request("r", inst), false);
    ASSERT_TRUE(client.next().has_value());

    client.send(R"({"op":"stats","id":"s"})", false);
    auto f = client.next();
    ASSERT_TRUE(f.has_value());
    const io::Json doc = io::Json::parse(f->payload);
    EXPECT_EQ(doc.at("op").as_string(), "stats");
    const io::Json& stats = doc.at("stats");
    // Service-level counters and transport counters, reconciled.
    EXPECT_EQ(stats.at("completed").as_number(), 1.0);
    const io::Json& transport = stats.at("transport");
    EXPECT_EQ(transport.at("requests").as_number(), 1.0);
    EXPECT_EQ(transport.at("responses").as_number(), 1.0);
    EXPECT_EQ(transport.at("open_connections").as_number(), 1.0);
    EXPECT_GE(transport.at("bytes_in").as_number(), 1.0);
    EXPECT_GE(transport.at("frames_decoded").as_number(), 2.0);
}

TEST(NetServer, GracefulStopAnswersEverySubmittedRequest) {
    ServerHandle server;
    Client client(server.port);

    const auto inst = uavdc::testing::small_instance(10, 200.0, 55);
    const auto fp = core::PlanningContext::instance_fingerprint(inst);
    client.send(plan_request("p", inst), false);
    for (int i = 0; i < 16; ++i) {
        client.send(ref_request("r" + std::to_string(i), fp), false);
    }
    // Stop while the pipeline is in flight: whatever the server decoded is
    // answered (`ok` or `shutdown`), then the connection closes cleanly.
    server.stop.store(true);

    std::set<std::string> answered;
    std::uint64_t shut = 0;
    while (auto f = client.next()) {
        ASSERT_FALSE(f->malformed);
        const io::Json doc = io::Json::parse(f->payload);
        const std::string status = doc.at("status").as_string();
        EXPECT_TRUE(status == "ok" || status == "shutdown") << status;
        if (status == "shutdown") ++shut;
        EXPECT_TRUE(answered.insert(doc.at("id").as_string()).second)
            << "duplicate response for " << doc.at("id").as_string();
    }
    EXPECT_TRUE(client.eof);  // orderly close, not a reset

    const auto result = server.stop_and_join();
    // Exactly-once reconciliation: every delivered frame is accounted for
    // as a completed submission or an explicit shed, nothing double-counted.
    EXPECT_EQ(result.transport.requests, result.transport.responses);
    EXPECT_EQ(answered.size(), result.transport.requests +
                                   result.transport.shed_on_shutdown);
    EXPECT_EQ(result.transport.shed_on_shutdown, shut);
    EXPECT_EQ(result.service.internal_errors, 0u);
}

TEST(NetRepository, ReloadReproducesByteIdenticalResponses) {
    const std::string path =
        ::testing::TempDir() + "uavdc_repo_reload.jsonl";
    std::remove(path.c_str());
    const auto inst = uavdc::testing::small_instance(10, 200.0, 56);
    const auto fp = core::PlanningContext::instance_fingerprint(inst);

    service::PlanService::Config cfg;
    cfg.workers = 2;
    cfg.defaults = fast_options();

    std::string first;
    {
        Repository repo(path);
        auto store_cfg = cfg;
        store_cfg.store = repo.hooks();
        service::PlanService svc(store_cfg);
        std::promise<std::string> done;
        service::PlanRequest req;
        req.id = "a";
        req.planner = "alg2";
        req.instance = inst;
        svc.submit(std::move(req), [&](service::PlanResponse resp) {
            done.set_value(service::to_json(resp).at("result").dump());
        });
        first = done.get_future().get();
        svc.drain();
        EXPECT_EQ(repo.appended(), 2u);  // instance + response
    }

    // A fresh process: reload, then serve the same request by reference
    // only. The instance resolves from the repository and the response is
    // a byte-identical cache hit.
    {
        Repository repo(path);
        service::PlanService svc(cfg);
        const auto loaded = repo.load(svc);
        EXPECT_EQ(loaded.instances, 1u);
        EXPECT_EQ(loaded.responses, 1u);
        EXPECT_EQ(loaded.skipped, 0u);

        std::promise<service::PlanResponse> done;
        service::PlanRequest req;
        req.id = "b";
        req.planner = "alg2";
        req.instance_ref = fp;
        svc.submit(std::move(req), [&](service::PlanResponse resp) {
            done.set_value(std::move(resp));
        });
        const auto resp = done.get_future().get();
        svc.drain();
        EXPECT_EQ(resp.status, service::ResponseStatus::kOk);
        EXPECT_TRUE(resp.cache_hit);
        EXPECT_EQ(service::to_json(resp).at("result").dump(), first);
    }
    std::remove(path.c_str());
}

TEST(NetRepository, TruncatedTailIsSkippedOnLoad) {
    const std::string path =
        ::testing::TempDir() + "uavdc_repo_trunc.jsonl";
    std::remove(path.c_str());
    const auto inst = uavdc::testing::small_instance(8, 180.0, 57);
    {
        Repository repo(path);
        repo.append_instance(
            core::PlanningContext::instance_fingerprint(inst), inst);
    }
    {
        // Simulate a SIGKILL mid-append: a torn, unterminated record.
        std::FILE* f = std::fopen(path.c_str(), "ab");
        ASSERT_NE(f, nullptr);
        std::fputs("{\"type\":\"resp", f);
        std::fclose(f);
    }
    service::PlanService::Config cfg;
    cfg.workers = 1;
    service::PlanService svc(cfg);
    Repository repo(path);
    const auto loaded = repo.load(svc);
    EXPECT_EQ(loaded.instances, 1u);
    EXPECT_EQ(loaded.responses, 0u);
    EXPECT_EQ(loaded.skipped, 1u);
    svc.drain();
    std::remove(path.c_str());
}

/// A scripted in-process "shard": accepts the router's upstream connection,
/// reads one forwarded request, then hangs up without answering (the
/// connection-level equivalent of kill -9 mid-request). On the second
/// connection it answers properly. This makes the retry path deterministic
/// — no sleeps, no real processes.
TEST(NetRouter, StaticModeResendsPendingExactlyOnce) {
    Socket shard_listener = Socket::listen_tcp("127.0.0.1", 0, 16);
    const int shard_port = shard_listener.local_port();

    std::vector<std::string> seen_wire;  // forwarded payloads, in order
    std::thread shard([&] {
        for (int round = 0; round < 2; ++round) {
            std::optional<Socket> conn;
            while (!conn.has_value()) {
                conn = shard_listener.accept_one();
            }
            FrameDecoder dec;
            std::optional<Frame> f;
            char buf[4096];
            while (!f.has_value()) {
                const IoResult r = conn->read_some(buf, sizeof(buf));
                if (r.status != IoStatus::kOk) break;
                dec.feed(buf, r.n);
                f = dec.next();
            }
            if (!f.has_value()) break;
            seen_wire.push_back(f->payload);
            if (round == 0) continue;  // hang up unanswered: conn closes
            service::PlanResponse resp;
            resp.id = io::Json::parse(f->payload).at("id").as_string();
            resp.status = service::ResponseStatus::kOk;
            (void)conn->write_all(
                encode_frame(service::to_json(resp).dump(), true));
            // Hold the connection open until the router drains.
            while (conn->read_some(buf, sizeof(buf)).status ==
                   IoStatus::kOk) {
            }
        }
    });

    std::atomic<bool> stop{false};
    std::promise<int> port_promise;
    auto port_future = port_promise.get_future();
    RouterConfig rcfg;
    rcfg.port = 0;
    rcfg.endpoints = {shard_port};
    rcfg.stop = &stop;
    rcfg.poll_timeout_ms = 20;
    rcfg.on_listening = [&](int p) { port_promise.set_value(p); };
    Router::RunResult rres;
    std::thread router([&] {
        Router r(rcfg);
        rres = r.run();
    });
    const int router_port = port_future.get();

    Client client(router_port);
    const auto inst = uavdc::testing::small_instance(8, 180.0, 58);
    client.send(plan_request("only", inst), false);

    // Exactly one response despite the dead first connection: the pending
    // request was resent, answered once, and handed back once.
    auto f = client.next(20000);
    ASSERT_TRUE(f.has_value());
    const io::Json doc = io::Json::parse(f->payload);
    EXPECT_EQ(doc.at("id").as_string(), "only");
    EXPECT_EQ(doc.at("status").as_string(), "ok");
    EXPECT_FALSE(client.next(200).has_value()) << "duplicate response";

    // The router's own stats agree.
    client.send(R"({"op":"stats","id":"s"})", false);
    f = client.next();
    ASSERT_TRUE(f.has_value());
    const io::Json stats = io::Json::parse(f->payload).at("stats");
    EXPECT_EQ(
        stats.at("transport").at("retried_after_shard_death").as_number(),
        1.0);
    EXPECT_EQ(stats.at("pending").as_number(), 0.0);

    stop.store(true);
    router.join();
    shard_listener.close();
    shard.join();
    EXPECT_TRUE(rres.clean_shutdown);
    EXPECT_EQ(rres.transport.retried_after_shard_death, 1u);
    // Both transmissions carried the identical tagged wire payload —
    // deterministic planning makes the retry safe.
    ASSERT_EQ(seen_wire.size(), 2u);
    EXPECT_EQ(seen_wire[0], seen_wire[1]);
}

TEST(NetSignal, TriggerSetsFlagAndWakesPipe) {
    auto& sig = ShutdownSignal::install();
    sig.reset();
    EXPECT_FALSE(sig.requested());
    sig.trigger();
    EXPECT_TRUE(sig.requested());
    // The wake fd is readable so pollers exit their wait immediately.
    std::vector<PollEntry> entries;
    entries.push_back({sig.wake_fd(), true, false, false, false, false});
    EXPECT_EQ(poll_wait(entries, 1000), 1);
    EXPECT_TRUE(entries[0].readable);
    sig.reset();
    EXPECT_FALSE(sig.requested());
    entries[0] = {sig.wake_fd(), true, false, false, false, false};
    EXPECT_EQ(poll_wait(entries, 0), 0);
}

TEST(NetTransportStats, JsonCarriesEveryCounter) {
    TransportStats t;
    t.connections_opened = 3;
    t.open_connections = 2;
    t.bytes_in = 100;
    t.bytes_out = 200;
    t.frames_decoded = 7;
    t.frames_malformed = 1;
    t.requests = 5;
    t.responses = 4;
    t.shed_on_shutdown = 1;
    t.retried_after_shard_death = 2;
    t.shard_respawns = 1;
    const io::Json doc = to_json(t);
    EXPECT_EQ(doc.at("connections_opened").as_number(), 3.0);
    EXPECT_EQ(doc.at("open_connections").as_number(), 2.0);
    EXPECT_EQ(doc.at("bytes_in").as_number(), 100.0);
    EXPECT_EQ(doc.at("bytes_out").as_number(), 200.0);
    EXPECT_EQ(doc.at("frames_decoded").as_number(), 7.0);
    EXPECT_EQ(doc.at("frames_malformed").as_number(), 1.0);
    EXPECT_EQ(doc.at("requests").as_number(), 5.0);
    EXPECT_EQ(doc.at("responses").as_number(), 4.0);
    EXPECT_EQ(doc.at("shed_on_shutdown").as_number(), 1.0);
    EXPECT_EQ(doc.at("retried_after_shard_death").as_number(), 2.0);
    EXPECT_EQ(doc.at("shard_respawns").as_number(), 1.0);
}

}  // namespace
}  // namespace uavdc::net
