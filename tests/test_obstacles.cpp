#include "uavdc/geom/obstacle_field.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"
#include "uavdc/core/algorithm2.hpp"
#include "uavdc/core/route_around.hpp"

namespace uavdc::geom {
namespace {

TEST(ObstacleField, EmptyFieldIsAllClear) {
    const ObstacleField field({});
    EXPECT_TRUE(field.empty());
    EXPECT_FALSE(field.blocked({5.0, 5.0}));
    EXPECT_TRUE(field.segment_clear({0.0, 0.0}, {100.0, 100.0}));
    const auto path = field.shortest_path({0.0, 0.0}, {30.0, 40.0});
    EXPECT_TRUE(path.reachable);
    EXPECT_DOUBLE_EQ(path.length_m, 50.0);
    EXPECT_EQ(path.waypoints.size(), 2u);
}

TEST(ObstacleField, BlockedDetection) {
    const ObstacleField field({Aabb{{10.0, 10.0}, {20.0, 20.0}}});
    EXPECT_TRUE(field.blocked({15.0, 15.0}));
    EXPECT_FALSE(field.blocked({5.0, 5.0}));
    EXPECT_FALSE(field.blocked({10.0, 15.0}));  // boundary is allowed
}

TEST(ObstacleField, SegmentClearCases) {
    const ObstacleField field({Aabb{{10.0, 10.0}, {20.0, 20.0}}});
    // Straight through the middle: blocked.
    EXPECT_FALSE(field.segment_clear({0.0, 15.0}, {30.0, 15.0}));
    // Passing beside: clear.
    EXPECT_TRUE(field.segment_clear({0.0, 25.0}, {30.0, 25.0}));
    // Grazing the boundary: clear.
    EXPECT_TRUE(field.segment_clear({0.0, 20.0}, {30.0, 20.0}));
    // Fully inside: blocked.
    EXPECT_FALSE(field.segment_clear({12.0, 12.0}, {18.0, 18.0}));
    // Diagonal corner-to-corner through the interior: blocked.
    EXPECT_FALSE(field.segment_clear({5.0, 5.0}, {25.0, 25.0}));
    // Vertical segment to the side: clear.
    EXPECT_TRUE(field.segment_clear({25.0, 0.0}, {25.0, 30.0}));
}

TEST(ObstacleField, DetourAroundSingleBox) {
    // a and b on the same horizontal line blocked by a centered square.
    const ObstacleField field({Aabb{{10.0, -5.0}, {20.0, 5.0}}});
    const Vec2 a{0.0, 0.0};
    const Vec2 b{30.0, 0.0};
    const auto path = field.shortest_path(a, b);
    ASSERT_TRUE(path.reachable);
    EXPECT_GT(path.length_m, 30.0);
    // Optimal detour hugs both top corners (10,5) and (20,5):
    // sqrt(10^2+5^2) + 10 + sqrt(10^2+5^2) approx 32.36.
    const double expect = 2.0 * std::sqrt(10.0 * 10.0 + 5.0 * 5.0) + 10.0;
    EXPECT_NEAR(path.length_m, expect, 0.1);
    EXPECT_GE(path.waypoints.size(), 3u);
    // Path legs must all be clear.
    for (std::size_t i = 0; i + 1 < path.waypoints.size(); ++i) {
        EXPECT_TRUE(field.segment_clear(path.waypoints[i],
                                        path.waypoints[i + 1]));
    }
}

TEST(ObstacleField, EndpointInsideZoneUnreachable) {
    const ObstacleField field({Aabb{{10.0, 10.0}, {20.0, 20.0}}});
    EXPECT_FALSE(field.shortest_path({15.0, 15.0}, {0.0, 0.0}).reachable);
    EXPECT_FALSE(field.shortest_path({0.0, 0.0}, {15.0, 15.0}).reachable);
    EXPECT_TRUE(std::isinf(field.distance_around({0.0, 0.0},
                                                 {15.0, 15.0})));
}

TEST(ObstacleField, ClearanceInflatesZones) {
    const ObstacleField tight({Aabb{{10.0, 10.0}, {20.0, 20.0}}}, 0.0);
    const ObstacleField wide({Aabb{{10.0, 10.0}, {20.0, 20.0}}}, 5.0);
    // Point 3 m from the zone edge: allowed without clearance, blocked with.
    EXPECT_FALSE(tight.blocked({23.0, 15.0}));
    EXPECT_TRUE(wide.blocked({23.0, 15.0}));
    // Detours get longer with clearance.
    const double d_tight = tight.distance_around({0.0, 15.0}, {30.0, 15.0});
    const double d_wide = wide.distance_around({0.0, 15.0}, {30.0, 15.0});
    EXPECT_GT(d_wide, d_tight);
}

TEST(ObstacleField, TwoZonesSlalom) {
    const ObstacleField field({Aabb{{10.0, 0.0}, {20.0, 30.0}},
                               Aabb{{30.0, -30.0}, {40.0, 20.0}}});
    const auto path = field.shortest_path({0.0, 10.0}, {50.0, 10.0});
    ASSERT_TRUE(path.reachable);
    EXPECT_GT(path.length_m, 50.0);
    for (std::size_t i = 0; i + 1 < path.waypoints.size(); ++i) {
        EXPECT_TRUE(field.segment_clear(path.waypoints[i],
                                        path.waypoints[i + 1]));
    }
    // Triangle inequality for routed distances (metric property).
    const double ab = field.distance_around({0.0, 10.0}, {25.0, -10.0});
    const double bc = field.distance_around({25.0, -10.0}, {50.0, 10.0});
    EXPECT_LE(path.length_m, ab + bc + 1e-9);
}

}  // namespace
}  // namespace uavdc::geom

namespace uavdc::core {
namespace {

TEST(RouteAround, NoZonesIsIdentity) {
    const auto inst = testing::small_instance(15, 250.0, 21);
    Algorithm2Config cfg;
    cfg.candidates.delta_m = 25.0;
    const auto res = GreedyCoveragePlanner(cfg).plan(inst);
    const geom::ObstacleField field({});
    const auto routed = route_around(inst, res.plan, field);
    EXPECT_TRUE(routed.reachable);
    EXPECT_NEAR(routed.travel_m, res.plan.travel_length(inst.depot), 1e-9);
    EXPECT_NEAR(routed.detour_factor(), 1.0, 1e-12);
    EXPECT_NEAR(routed.energy_j,
                res.plan.total_energy(inst.depot, inst.uav), 1e-9);
}

TEST(RouteAround, DetourCostsEnergy) {
    const auto inst = testing::manual_instance({{{200.0, 0.0}, 300.0}},
                                               300.0);
    model::FlightPlan plan;
    plan.stops.push_back({{200.0, 0.0}, 2.0, -1});
    // Wall between depot (0,0) and the stop.
    const geom::ObstacleField field(
        {geom::Aabb{{90.0, -50.0}, {110.0, 50.0}}});
    const auto routed = route_around(inst, plan, field);
    ASSERT_TRUE(routed.reachable);
    EXPECT_GT(routed.extra_m, 0.0);
    EXPECT_GT(routed.detour_factor(), 1.0);
    EXPECT_GT(routed.energy_j, plan.total_energy(inst.depot, inst.uav));
    ASSERT_EQ(routed.legs.size(), 2u);  // out and back
}

TEST(RouteAround, StopInsideZoneUnreachable) {
    const auto inst = testing::manual_instance({{{100.0, 100.0}, 300.0}},
                                               300.0);
    model::FlightPlan plan;
    plan.stops.push_back({{100.0, 100.0}, 2.0, -1});
    const geom::ObstacleField field(
        {geom::Aabb{{80.0, 80.0}, {120.0, 120.0}}});
    const auto routed = route_around(inst, plan, field);
    EXPECT_FALSE(routed.reachable);
    EXPECT_FALSE(routed.energy_feasible);
}

TEST(RouteAround, PlanWithZonesConverges) {
    auto inst = testing::small_instance(25, 300.0, 22, 5.0e4);
    const geom::ObstacleField field(
        {geom::Aabb{{100.0, 100.0}, {160.0, 160.0}}});
    const auto routed = plan_with_zones(
        inst, field, [&](double budget) {
            auto tmp = inst;
            tmp.uav.energy_j = budget;
            Algorithm2Config cfg;
            cfg.candidates.delta_m = 20.0;
            return GreedyCoveragePlanner(cfg).plan(tmp).plan;
        });
    // Stops can land inside the zone (the planner is zone-oblivious);
    // when reachable, the iterated budget must make the detour affordable.
    if (routed.reachable) {
        EXPECT_TRUE(routed.energy_feasible);
        EXPECT_LE(routed.energy_j, inst.uav.energy_j + 1e-6);
    }
}

}  // namespace
}  // namespace uavdc::core
