#include <gtest/gtest.h>

#include "uavdc/util/check.hpp"

#include <numeric>
#include <set>
#include <vector>

#include "uavdc/orienteering/exact.hpp"
#include "uavdc/orienteering/grasp.hpp"
#include "uavdc/orienteering/greedy.hpp"
#include "uavdc/orienteering/solver.hpp"
#include "uavdc/util/rng.hpp"

namespace uavdc::orienteering {
namespace {

Problem random_problem(int n, double budget, std::uint64_t seed) {
    util::Rng rng(seed);
    std::vector<geom::Vec2> pts;
    for (int i = 0; i < n; ++i) {
        pts.push_back({rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)});
    }
    Problem p;
    p.graph = graph::DenseGraph::euclidean(pts);
    p.prizes.resize(static_cast<std::size_t>(n));
    for (auto& z : p.prizes) z = rng.uniform(1.0, 10.0);
    p.prizes[0] = 0.0;
    p.depot = 0;
    p.budget = budget;
    return p;
}

void check_solution(const Problem& p, const Solution& s) {
    ASSERT_FALSE(s.tour.empty());
    EXPECT_EQ(s.tour.front(), p.depot);
    std::set<std::size_t> seen(s.tour.begin(), s.tour.end());
    EXPECT_EQ(seen.size(), s.tour.size()) << "tour revisits a node";
    EXPECT_NEAR(s.cost, p.graph.tour_length(s.tour), 1e-9);
    double prize = 0.0;
    for (std::size_t v : s.tour) prize += p.prizes[v];
    EXPECT_NEAR(s.prize, prize, 1e-9);
    EXPECT_TRUE(s.feasible(p));
}

TEST(Problem, ValidationCatchesErrors) {
    Problem p = random_problem(5, 100.0, 1);
    p.validate();
    Problem bad_depot = p;
    bad_depot.depot = 99;
    EXPECT_THROW(bad_depot.validate(), util::ContractViolation);
    Problem bad_budget = p;
    bad_budget.budget = -1.0;
    EXPECT_THROW(bad_budget.validate(), util::ContractViolation);
    Problem bad_prize = p;
    bad_prize.prizes[2] = -5.0;
    EXPECT_THROW(bad_prize.validate(), util::ContractViolation);
    Problem mismatch = p;
    mismatch.prizes.push_back(1.0);
    EXPECT_THROW(mismatch.validate(), util::ContractViolation);
}

TEST(MakeSolution, ComputesCostAndPrize) {
    const Problem p = random_problem(6, 1000.0, 2);
    const Solution s = make_solution(p, {0, 2, 4});
    EXPECT_NEAR(s.cost, p.graph.tour_length(s.tour), 1e-12);
    EXPECT_NEAR(s.prize, p.prizes[0] + p.prizes[2] + p.prizes[4], 1e-12);
}

TEST(Exact, ZeroBudgetStaysHome) {
    const Problem p = random_problem(8, 0.0, 3);
    const Solution s = solve_exact(p);
    EXPECT_EQ(s.tour, std::vector<std::size_t>{0});
    EXPECT_EQ(s.prize, 0.0);
}

TEST(Exact, HugeBudgetVisitsEverything) {
    const Problem p = random_problem(10, 1e9, 4);
    const Solution s = solve_exact(p);
    EXPECT_EQ(s.tour.size(), p.size());
    double total = 0.0;
    for (double z : p.prizes) total += z;
    EXPECT_NEAR(s.prize, total, 1e-9);
}

TEST(Exact, KnownTinyInstance) {
    // Depot at origin; three prize nodes on a line. Budget only allows the
    // nearer two.
    Problem p;
    std::vector<geom::Vec2> pts{
        {0.0, 0.0}, {10.0, 0.0}, {20.0, 0.0}, {100.0, 0.0}};
    p.graph = graph::DenseGraph::euclidean(pts);
    p.prizes = {0.0, 5.0, 5.0, 100.0};
    p.depot = 0;
    p.budget = 50.0;  // reach x=20 and return (cost 40); x=100 needs 200
    const Solution s = solve_exact(p);
    check_solution(p, s);
    EXPECT_NEAR(s.prize, 10.0, 1e-12);
}

TEST(Exact, TooLargeThrows) {
    const Problem p = random_problem(25, 100.0, 5);
    EXPECT_THROW(solve_exact(p), util::ContractViolation);
}

TEST(Greedy, AlwaysFeasibleAndRooted) {
    for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
        const Problem p = random_problem(30, 180.0, seed);
        const Solution s = solve_greedy(p);
        check_solution(p, s);
    }
}

TEST(Greedy, CollectsSomethingWhenBudgetAllows) {
    const Problem p = random_problem(20, 300.0, 6);
    const Solution s = solve_greedy(p);
    EXPECT_GT(s.prize, 0.0);
    EXPECT_GT(s.tour.size(), 1u);
}

TEST(Greedy, WithinHalfOfExactOnSmallInstances) {
    for (std::uint64_t seed : {7u, 8u, 9u, 10u}) {
        const Problem p = random_problem(12, 150.0, seed);
        const Solution exact = solve_exact(p);
        const Solution greedy = solve_greedy(p);
        EXPECT_GE(greedy.prize, 0.5 * exact.prize - 1e-9) << "seed " << seed;
        EXPECT_LE(greedy.prize, exact.prize + 1e-9) << "seed " << seed;
    }
}

TEST(Grasp, AlwaysFeasibleAndRooted) {
    for (std::uint64_t seed : {11u, 12u, 13u}) {
        const Problem p = random_problem(35, 200.0, seed);
        GraspConfig cfg;
        cfg.iterations = 8;
        const Solution s = solve_grasp(p, cfg);
        check_solution(p, s);
    }
}

TEST(Grasp, AtLeastAsGoodAsGreedy) {
    for (std::uint64_t seed : {14u, 15u, 16u, 17u}) {
        const Problem p = random_problem(30, 220.0, seed);
        const Solution greedy = solve_greedy(p);
        const Solution grasp = solve_grasp(p);
        EXPECT_GE(grasp.prize, greedy.prize - 1e-9) << "seed " << seed;
    }
}

TEST(Grasp, NearExactOnSmallInstances) {
    for (std::uint64_t seed : {18u, 19u, 20u}) {
        const Problem p = random_problem(13, 170.0, seed);
        const Solution exact = solve_exact(p);
        const Solution grasp = solve_grasp(p);
        EXPECT_GE(grasp.prize, 0.9 * exact.prize - 1e-9) << "seed " << seed;
    }
}

TEST(Grasp, DeterministicForFixedSeed) {
    const Problem p = random_problem(25, 200.0, 21);
    GraspConfig cfg;
    cfg.seed = 99;
    cfg.iterations = 6;
    const Solution a = solve_grasp(p, cfg);
    const Solution b = solve_grasp(p, cfg);
    EXPECT_EQ(a.tour, b.tour);
    EXPECT_DOUBLE_EQ(a.prize, b.prize);
}

TEST(Polish, NeverBreaksFeasibility) {
    const Problem p = random_problem(20, 250.0, 22);
    Solution s = make_solution(p, {0});
    polish(p, s);
    check_solution(p, s);
    EXPECT_GT(s.prize, 0.0);
}

TEST(SolverDispatch, AllKindsRun) {
    const Problem p = random_problem(12, 150.0, 23);
    const Solution e = solve(p, SolverKind::kExact);
    const Solution g = solve(p, SolverKind::kGreedy);
    const Solution r = solve(p, SolverKind::kGrasp);
    check_solution(p, e);
    check_solution(p, g);
    check_solution(p, r);
    EXPECT_GE(e.prize, g.prize - 1e-9);
    EXPECT_GE(e.prize, r.prize - 1e-9);
}

TEST(SolverDispatch, Names) {
    EXPECT_EQ(to_string(SolverKind::kExact), "exact");
    EXPECT_EQ(to_string(SolverKind::kGreedy), "greedy");
    EXPECT_EQ(to_string(SolverKind::kGrasp), "grasp");
}

// Budget sweep property: prize is monotone non-decreasing in budget for the
// exact solver (more energy can never hurt).
class ExactBudgetSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExactBudgetSweep, PrizeMonotoneInBudget) {
    Problem p = random_problem(11, 0.0, GetParam());
    double prev = -1.0;
    for (double budget : {0.0, 60.0, 120.0, 180.0, 240.0, 1000.0}) {
        p.budget = budget;
        const Solution s = solve_exact(p);
        EXPECT_GE(s.prize, prev - 1e-9) << "budget " << budget;
        prev = s.prize;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactBudgetSweep,
                         ::testing::Values(31u, 32u, 33u, 34u, 35u));

}  // namespace
}  // namespace uavdc::orienteering
