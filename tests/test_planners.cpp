#include <gtest/gtest.h>

#include "uavdc/util/check.hpp"

#include <memory>

#include "test_util.hpp"
#include "uavdc/core/algorithm1.hpp"
#include "uavdc/core/algorithm2.hpp"
#include "uavdc/core/algorithm3.hpp"
#include "uavdc/core/benchmark_planner.hpp"
#include "uavdc/core/evaluate.hpp"

namespace uavdc::core {
namespace {

using testing::manual_instance;
using testing::small_instance;

/// Common sanity checks for any planner output.
void check_plan(const model::Instance& inst, const PlanResult& res) {
    EXPECT_TRUE(res.plan.feasible(inst.depot, inst.uav, 1e-6))
        << "planned energy " << res.plan.total_energy(inst.depot, inst.uav)
        << " exceeds capacity " << inst.uav.energy_j;
    for (const auto& stop : res.plan.stops) {
        EXPECT_GE(stop.dwell_s, 0.0);
    }
    const auto ev = evaluate_plan(inst, res.plan);
    EXPECT_TRUE(ev.energy_feasible);
    // The planner's claimed volume must not exceed reality (evaluation can
    // only find MORE data than planned, via overlap bonuses).
    EXPECT_GE(ev.collected_mb, res.stats.planned_mb - 1e-6)
        << "planner overstated collection";
    EXPECT_LE(ev.collected_mb, inst.total_data_mb() + 1e-6);
    EXPECT_GE(res.stats.runtime_s, 0.0);
}

Algorithm1Config small_alg1() {
    Algorithm1Config cfg;
    cfg.candidates.delta_m = 20.0;
    cfg.grasp.iterations = 6;
    return cfg;
}

TEST(Algorithm1, FeasibleOnRandomInstances) {
    for (std::uint64_t seed : {1u, 2u, 3u}) {
        const auto inst = small_instance(30, 300.0, seed);
        GridOrienteeringPlanner planner(small_alg1());
        const auto res = planner.plan(inst);
        check_plan(inst, res);
        EXPECT_GT(res.plan.num_stops(), 0u);
        EXPECT_GT(res.stats.planned_mb, 0.0);
    }
}

TEST(Algorithm1, AuxiliaryGraphIsMetric) {
    // Lemma 1: w2 satisfies the triangle inequality.
    const auto inst = small_instance(20, 200.0, 4);
    HoverCandidateConfig ccfg;
    ccfg.delta_m = 25.0;
    const auto cands = build_hover_candidates(inst, ccfg);
    const auto problem =
        GridOrienteeringPlanner::build_auxiliary_problem(inst, cands);
    EXPECT_LE(problem.graph.max_triangle_violation(), 1e-9);
}

TEST(Algorithm1, AuxiliaryEdgeWeightsMatchEq9) {
    const auto inst = manual_instance(
        {{{60.0, 0.0}, 300.0}, {{0.0, 60.0}, 600.0}});
    HoverCandidateConfig ccfg;
    ccfg.delta_m = 40.0;
    const auto cands = build_hover_candidates(inst, ccfg);
    const auto p =
        GridOrienteeringPlanner::build_auxiliary_problem(inst, cands);
    ASSERT_EQ(p.size(), cands.size() + 1);
    // Check every edge against a direct Eq. 9 computation.
    for (std::size_t i = 1; i < p.size(); ++i) {
        const auto& ci = cands.candidates[i - 1];
        // Depot edge: w1(depot) = 0.
        const double want_depot =
            ci.hover_energy_j / 2.0 +
            inst.uav.travel_energy(geom::distance(inst.depot, ci.pos));
        EXPECT_NEAR(p.graph.weight(0, i), want_depot, 1e-9);
        for (std::size_t j = i + 1; j < p.size(); ++j) {
            const auto& cj = cands.candidates[j - 1];
            const double want =
                (ci.hover_energy_j + cj.hover_energy_j) / 2.0 +
                inst.uav.travel_energy(geom::distance(ci.pos, cj.pos));
            EXPECT_NEAR(p.graph.weight(i, j), want, 1e-9);
        }
    }
    EXPECT_DOUBLE_EQ(p.budget, inst.uav.energy_j);
    EXPECT_DOUBLE_EQ(p.prizes[0], 0.0);
}

TEST(Algorithm1, ExactSolverOnTinyInstance) {
    const auto inst = manual_instance(
        {{{50.0, 50.0}, 300.0}, {{150.0, 50.0}, 600.0}}, 200.0);
    Algorithm1Config cfg;
    cfg.candidates.delta_m = 50.0;
    cfg.solver = orienteering::SolverKind::kExact;
    GridOrienteeringPlanner planner(cfg);
    const auto res = planner.plan(inst);
    check_plan(inst, res);
    // Plenty of energy: everything collected.
    const auto ev = evaluate_plan(inst, res.plan);
    EXPECT_NEAR(ev.collected_mb, 900.0, 1e-6);
}

TEST(Algorithm1, EmptyInstanceYieldsEmptyPlan) {
    model::Instance inst;
    inst.region = geom::Aabb::of_size(100.0, 100.0);
    inst.depot = {0.0, 0.0};
    GridOrienteeringPlanner planner(small_alg1());
    const auto res = planner.plan(inst);
    EXPECT_TRUE(res.plan.empty());
    EXPECT_DOUBLE_EQ(res.stats.planned_mb, 0.0);
}

TEST(Algorithm1, NameIncludesSolver) {
    EXPECT_EQ(GridOrienteeringPlanner(small_alg1()).name(), "alg1-grasp");
    Algorithm1Config cfg = small_alg1();
    cfg.solver = orienteering::SolverKind::kGreedy;
    EXPECT_EQ(GridOrienteeringPlanner(cfg).name(), "alg1-greedy");
}

Algorithm2Config small_alg2() {
    Algorithm2Config cfg;
    cfg.candidates.delta_m = 20.0;
    return cfg;
}

TEST(Algorithm2, FeasibleOnRandomInstances) {
    for (std::uint64_t seed : {5u, 6u, 7u}) {
        const auto inst = small_instance(30, 300.0, seed);
        GreedyCoveragePlanner planner(small_alg2());
        const auto res = planner.plan(inst);
        check_plan(inst, res);
        EXPECT_GT(res.plan.num_stops(), 0u);
    }
}

TEST(Algorithm2, FullCollectionDwellSufficesForClaimedDevices) {
    // Every device is fully collected somewhere: evaluation must match the
    // planner's claim exactly for the devices it counted.
    const auto inst = small_instance(25, 250.0, 8);
    GreedyCoveragePlanner planner(small_alg2());
    const auto res = planner.plan(inst);
    const auto ev = evaluate_plan(inst, res.plan);
    EXPECT_NEAR(ev.collected_mb, res.stats.planned_mb, 1e-6)
        << "full-collection planner should collect exactly what it claims";
}

TEST(Algorithm2, ExactRatioTspModeWorksOnTinyInstance) {
    const auto inst = small_instance(12, 200.0, 9, 4.0e4);
    Algorithm2Config cfg = small_alg2();
    cfg.exact_ratio_tsp = true;
    GreedyCoveragePlanner planner(cfg);
    const auto res = planner.plan(inst);
    check_plan(inst, res);
}

TEST(Algorithm2, MoreEnergyNeverCollectsLess) {
    const auto base = small_instance(30, 300.0, 10, 3.0e4);
    GreedyCoveragePlanner planner(small_alg2());
    double prev = -1.0;
    for (double e : {3.0e4, 6.0e4, 1.2e5}) {
        auto inst = base;
        inst.uav.energy_j = e;
        const auto res = planner.plan(inst);
        const auto ev = evaluate_plan(inst, res.plan);
        EXPECT_GE(ev.collected_mb, prev - 1e-6) << "energy " << e;
        prev = ev.collected_mb;
    }
}

TEST(Algorithm2, TinyBudgetMayYieldEmptyPlan) {
    auto inst = small_instance(10, 400.0, 11);
    inst.uav.energy_j = 1.0;  // cannot even fly anywhere
    GreedyCoveragePlanner planner(small_alg2());
    const auto res = planner.plan(inst);
    EXPECT_TRUE(res.plan.empty());
    EXPECT_DOUBLE_EQ(res.stats.planned_mb, 0.0);
}

Algorithm3Config small_alg3(int k) {
    Algorithm3Config cfg;
    cfg.candidates.delta_m = 20.0;
    cfg.k = k;
    return cfg;
}

TEST(Algorithm3, FeasibleOnRandomInstances) {
    for (std::uint64_t seed : {12u, 13u}) {
        const auto inst = small_instance(30, 300.0, seed);
        for (int k : {1, 2, 4}) {
            PartialCollectionPlanner planner(small_alg3(k));
            const auto res = planner.plan(inst);
            check_plan(inst, res);
        }
    }
}

TEST(Algorithm3, PlannedVolumeMatchesEvaluationExactly) {
    // Alg 3's residual bookkeeping mirrors execution semantics 1:1.
    const auto inst = small_instance(25, 250.0, 14);
    PartialCollectionPlanner planner(small_alg3(3));
    const auto res = planner.plan(inst);
    const auto ev = evaluate_plan(inst, res.plan);
    EXPECT_NEAR(ev.collected_mb, res.stats.planned_mb, 1e-6);
}

TEST(Algorithm3, K1AtLeastAsGoodAsAlgorithm2) {
    // DCM is the K = 1 special case of PDCM; the residual-aware planner
    // never collects less than Algorithm 2 on the same instance.
    for (std::uint64_t seed : {15u, 16u, 17u}) {
        const auto inst = small_instance(30, 300.0, seed);
        GreedyCoveragePlanner alg2(small_alg2());
        PartialCollectionPlanner alg3(small_alg3(1));
        const double v2 =
            evaluate_plan(inst, alg2.plan(inst).plan).collected_mb;
        const double v3 =
            evaluate_plan(inst, alg3.plan(inst).plan).collected_mb;
        EXPECT_GE(v3, v2 - 1e-6) << "seed " << seed;
    }
}

TEST(Algorithm3, LargerKNotWorseOnAverage) {
    // Paper (Fig. 4a): larger K collects more. Check the aggregate over
    // several seeds rather than every instance (greedy heuristics may lose
    // on an individual draw).
    double v_k1 = 0.0, v_k4 = 0.0;
    for (std::uint64_t seed : {18u, 19u, 20u, 21u, 22u}) {
        const auto inst = small_instance(30, 300.0, seed, 4.0e4);
        v_k1 += evaluate_plan(
                    inst, PartialCollectionPlanner(small_alg3(1)).plan(inst)
                              .plan)
                    .collected_mb;
        v_k4 += evaluate_plan(
                    inst, PartialCollectionPlanner(small_alg3(4)).plan(inst)
                              .plan)
                    .collected_mb;
    }
    EXPECT_GE(v_k4, 0.97 * v_k1);
}

TEST(Algorithm3, InvalidKThrows) {
    PartialCollectionPlanner planner(small_alg3(0));
    EXPECT_THROW(planner.plan(small_instance(5)), util::ContractViolation);
}

TEST(Algorithm3, NameEncodesK) {
    EXPECT_EQ(PartialCollectionPlanner(small_alg3(4)).name(), "alg3-k4");
}

TEST(BenchmarkPlanner, FeasibleOnRandomInstances) {
    for (std::uint64_t seed : {23u, 24u, 25u}) {
        const auto inst = small_instance(30, 300.0, seed);
        PruneTspPlanner planner;
        const auto res = planner.plan(inst);
        check_plan(inst, res);
    }
}

TEST(BenchmarkPlanner, KeepsEverythingWhenEnergyAbounds) {
    const auto inst = small_instance(15, 200.0, 26, 1.0e7);
    PruneTspPlanner planner;
    const auto res = planner.plan(inst);
    EXPECT_EQ(res.plan.num_stops(), inst.num_devices());
    EXPECT_EQ(res.stats.iterations, 0);  // nothing pruned
    const auto ev = evaluate_plan(inst, res.plan);
    EXPECT_NEAR(ev.collected_mb, inst.total_data_mb(), 1e-6);
}

TEST(BenchmarkPlanner, PrunesUnderTightBudget) {
    auto inst = small_instance(30, 300.0, 27);
    inst.uav.energy_j = 2.0e4;
    PruneTspPlanner planner;
    const auto res = planner.plan(inst);
    check_plan(inst, res);
    EXPECT_LT(res.plan.num_stops(), inst.num_devices());
    EXPECT_GT(res.stats.iterations, 0);
}

TEST(BenchmarkPlanner, EmptyInstance) {
    model::Instance inst;
    inst.region = geom::Aabb::of_size(10.0, 10.0);
    inst.depot = {0.0, 0.0};
    PruneTspPlanner planner;
    const auto res = planner.plan(inst);
    EXPECT_TRUE(res.plan.empty());
}

TEST(Planners, PaperOrderingHoldsOnAverage) {
    // Headline shape: Alg 2 and Alg 3 beat the benchmark; Alg 3 (K=2) is at
    // least on par with Alg 2 (aggregate over seeds).
    double bench = 0.0, a2 = 0.0, a3 = 0.0;
    for (std::uint64_t seed : {30u, 31u, 32u, 33u}) {
        // Budget tight enough that no planner can collect everything.
        const auto inst = small_instance(40, 350.0, seed, 1.5e4);
        bench +=
            evaluate_plan(inst, PruneTspPlanner().plan(inst).plan)
                .collected_mb;
        a2 += evaluate_plan(
                  inst, GreedyCoveragePlanner(small_alg2()).plan(inst).plan)
                  .collected_mb;
        a3 += evaluate_plan(
                  inst,
                  PartialCollectionPlanner(small_alg3(2)).plan(inst).plan)
                  .collected_mb;
    }
    EXPECT_GT(a2, bench);
    EXPECT_GT(a3, bench);
    EXPECT_GE(a3, 0.95 * a2);
}

}  // namespace
}  // namespace uavdc::core
