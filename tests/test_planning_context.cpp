#include "uavdc/core/planning_context.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"
#include "uavdc/core/compare.hpp"
#include "uavdc/core/hover_candidates.hpp"
#include "uavdc/core/registry.hpp"

namespace uavdc::core {
namespace {

bool plans_equal(const model::FlightPlan& a, const model::FlightPlan& b) {
    if (a.stops.size() != b.stops.size()) return false;
    for (std::size_t i = 0; i < a.stops.size(); ++i) {
        if (a.stops[i].pos.x != b.stops[i].pos.x) return false;
        if (a.stops[i].pos.y != b.stops[i].pos.y) return false;
        if (a.stops[i].dwell_s != b.stops[i].dwell_s) return false;
        if (a.stops[i].cell_id != b.stops[i].cell_id) return false;
    }
    return true;
}

bool candidate_sets_equal(const HoverCandidateSet& a,
                          const HoverCandidateSet& b) {
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.candidates.size(); ++i) {
        const auto& ca = a.candidates[i];
        const auto& cb = b.candidates[i];
        if (ca.cell_id != cb.cell_id || ca.covered != cb.covered) return false;
        if (ca.pos.x != cb.pos.x || ca.pos.y != cb.pos.y) return false;
        if (ca.award_mb != cb.award_mb || ca.dwell_s != cb.dwell_s)
            return false;
    }
    return true;
}

TEST(PlanningContext, LazyCandidateBuild) {
    const auto inst = testing::small_instance(20, 220.0, 11);
    const PlanningContext ctx(inst);
    EXPECT_FALSE(ctx.candidates_built());
    const auto& cands = ctx.candidates();
    EXPECT_TRUE(ctx.candidates_built());
    EXPECT_GT(cands.size(), 0u);
    // Identical to calling the free builder directly.
    EXPECT_TRUE(candidate_sets_equal(
        cands, build_hover_candidates(inst, ctx.candidate_config())));
}

TEST(PlanningContext, CandidateBuildIsDeterministic) {
    const auto inst = testing::small_instance(60, 400.0, 12);
    const PlanningContext a(inst);
    const PlanningContext b(inst);
    EXPECT_TRUE(candidate_sets_equal(a.candidates(), b.candidates()));
}

TEST(PlanningContext, EnergyViewMatchesUavConfig) {
    const auto inst = testing::small_instance(10, 150.0, 13);
    const PlanningContext ctx(inst);
    const model::EnergyView& e = ctx.energy();
    EXPECT_DOUBLE_EQ(e.budget_j(), inst.uav.energy_j);
    EXPECT_DOUBLE_EQ(e.travel(123.0), inst.uav.travel_energy(123.0));
    EXPECT_DOUBLE_EQ(e.hover(4.5), inst.uav.hover_energy(4.5));
    EXPECT_DOUBLE_EQ(e.travel_time(250.0), inst.uav.travel_time(250.0));
    EXPECT_DOUBLE_EQ(e.tour_cost(100.0, 5.0),
                     inst.uav.travel_energy(100.0) +
                         inst.uav.hover_energy(5.0));
    EXPECT_TRUE(e.feasible(0.0, 0.0));
    EXPECT_FALSE(e.feasible(1e12, 0.0));
}

TEST(PlanningContext, DeviceIndexCoversAllDevices) {
    const auto inst = testing::small_instance(30, 260.0, 14);
    const PlanningContext ctx(inst);
    EXPECT_EQ(ctx.device_index().size(), inst.devices.size());
}

TEST(PlanningContext, NodeDistanceMatchesGeometry) {
    const auto inst = testing::small_instance(25, 240.0, 15);
    const PlanningContext ctx(inst);
    const auto& cands = ctx.candidates().candidates;
    ASSERT_GE(cands.size(), 2u);
    EXPECT_DOUBLE_EQ(ctx.node_distance(0, 0), 0.0);
    EXPECT_DOUBLE_EQ(ctx.node_distance(0, 1),
                     geom::distance(inst.depot, cands[0].pos));
    EXPECT_DOUBLE_EQ(ctx.node_distance(1, 2),
                     geom::distance(cands[0].pos, cands[1].pos));
    // Symmetric even though rows are cached independently.
    EXPECT_DOUBLE_EQ(ctx.node_distance(2, 1), ctx.node_distance(1, 2));
}

TEST(PlanningContext, FingerprintSensitivity) {
    const auto inst = testing::small_instance(12, 180.0, 16);
    const auto base = PlanningContext::instance_fingerprint(inst);
    EXPECT_EQ(base, PlanningContext::instance_fingerprint(inst));

    auto perturbed = inst;
    perturbed.uav.energy_j *= 2.0;
    EXPECT_NE(base, PlanningContext::instance_fingerprint(perturbed));

    perturbed = inst;
    perturbed.devices[0].data_mb += 1.0;
    EXPECT_NE(base, PlanningContext::instance_fingerprint(perturbed));

    perturbed = inst;
    perturbed.devices[0].pos.x += 0.5;
    EXPECT_NE(base, PlanningContext::instance_fingerprint(perturbed));

    HoverCandidateConfig cfg;
    const auto cfg_base = PlanningContext::config_fingerprint(cfg);
    cfg.delta_m += 5.0;
    EXPECT_NE(cfg_base, PlanningContext::config_fingerprint(cfg));
    cfg = {};
    cfg.max_candidates += 1;
    EXPECT_NE(cfg_base, PlanningContext::config_fingerprint(cfg));
}

TEST(PlanningContext, ObtainMemoizesIdenticalRequests) {
    const auto inst = testing::small_instance(18, 210.0, 17);
    auto& cache = PlanningContextCache::global();
    cache.clear();
    const auto before = cache.stats();
    const auto a = PlanningContext::obtain(inst);
    const auto b = PlanningContext::obtain(inst);
    EXPECT_EQ(a.get(), b.get());
    const auto after = cache.stats();
    EXPECT_EQ(after.misses, before.misses + 1);
    EXPECT_EQ(after.hits, before.hits + 1);

    // A different candidate config is a different cache entry.
    HoverCandidateConfig coarse;
    coarse.delta_m = 25.0;
    const auto c = PlanningContext::obtain(inst, coarse);
    EXPECT_NE(a.get(), c.get());
}

TEST(PlanningContext, PositionOkPredicateBypassesCache) {
    const auto inst = testing::small_instance(18, 210.0, 18);
    HoverCandidateConfig cfg;
    cfg.position_ok = [](const geom::Vec2&) { return true; };
    auto& cache = PlanningContextCache::global();
    const auto before = cache.stats();
    const auto a = PlanningContext::obtain(inst, cfg);
    const auto b = PlanningContext::obtain(inst, cfg);
    EXPECT_NE(a.get(), b.get());
    const auto after = cache.stats();
    EXPECT_EQ(after.uncached_builds, before.uncached_builds + 2);
    EXPECT_EQ(after.hits, before.hits);
}

TEST(PlanningContextCache, EvictsLeastRecentlyUsed) {
    PlanningContextCache cache(2);
    const auto i1 = testing::small_instance(8, 140.0, 21);
    const auto i2 = testing::small_instance(8, 140.0, 22);
    const auto i3 = testing::small_instance(8, 140.0, 23);
    const auto c1 = cache.obtain(i1, {});
    (void)cache.obtain(i2, {});
    EXPECT_EQ(cache.size(), 2u);
    // Touch i1 so i2 becomes the LRU entry, then insert i3.
    EXPECT_EQ(cache.obtain(i1, {}).get(), c1.get());
    (void)cache.obtain(i3, {});
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.stats().evictions, 1u);
    // i1 survived the eviction; i2 did not.
    EXPECT_EQ(cache.obtain(i1, {}).get(), c1.get());
    EXPECT_EQ(cache.stats().misses, 3u);
    EXPECT_EQ(cache.stats().hits, 2u);
}

// Acceptance: every registered planner produces the identical FlightPlan
// whether driven through the legacy Instance entry point or an explicitly
// shared PlanningContext.
TEST(PlanningContext, PlannersMatchLegacyInstancePath) {
    const auto inst = testing::small_instance(25, 280.0, 19);
    PlannerOptions opts;
    opts.delta_m = 20.0;
    opts.grasp_iterations = 3;
    const auto shared = PlanningContext::build(inst, opts.hover_config());
    for (const auto& name : planner_names()) {
        const auto via_instance = make_planner(name, opts)->plan(inst);
        const auto via_context = make_planner(name, opts)->plan(*shared);
        EXPECT_TRUE(plans_equal(via_instance.plan, via_context.plan))
            << name;
        EXPECT_DOUBLE_EQ(via_instance.stats.planned_mb,
                         via_context.stats.planned_mb)
            << name;
    }
}

// Acceptance: comparing all planners on one instance performs exactly one
// hover-candidate build — the context is shared across every planner.
TEST(PlanningContext, ComparePlannersBuildsCandidatesOnce) {
    const auto inst = testing::small_instance(25, 280.0, 20);
    PlannerOptions opts;
    opts.delta_m = 20.0;
    opts.grasp_iterations = 3;
    PlanningContextCache::global().clear();
    const auto builds_before = PlanningContext::total_candidate_builds();
    const auto results = compare_planners(inst, opts);
    EXPECT_EQ(results.size(), planner_names().size());
    EXPECT_EQ(PlanningContext::total_candidate_builds(), builds_before + 1);
}

}  // namespace
}  // namespace uavdc::core
