#include "uavdc/core/registry.hpp"

#include <gtest/gtest.h>

#include "uavdc/util/check.hpp"

#include "test_util.hpp"
#include "uavdc/core/evaluate.hpp"

namespace uavdc::core {
namespace {

TEST(Registry, ListsAllPlanners) {
    const auto names = planner_names();
    EXPECT_EQ(names,
              (std::vector<std::string>{"alg1", "alg2", "alg3",
                                        "benchmark", "kmeans", "sweep"}));
}

TEST(Registry, ConstructsEveryListedPlanner) {
    const auto inst = testing::small_instance(20, 250.0, 13);
    PlannerOptions opts;
    opts.delta_m = 25.0;
    opts.grasp_iterations = 3;
    for (const auto& name : planner_names()) {
        auto planner = make_planner(name, opts);
        ASSERT_NE(planner, nullptr) << name;
        const auto res = planner->plan(inst);
        EXPECT_TRUE(res.plan.feasible(inst.depot, inst.uav, 1e-6)) << name;
    }
}

TEST(Registry, UnknownNameThrows) {
    EXPECT_THROW((void)make_planner("alg9"), util::ContractViolation);
    EXPECT_THROW((void)make_planner(""), util::ContractViolation);
}

TEST(Registry, OptionsAreApplied) {
    PlannerOptions opts;
    opts.k = 7;
    EXPECT_EQ(make_planner("alg3", opts)->name(), "alg3-k7");
    opts.solver = orienteering::SolverKind::kGreedy;
    EXPECT_EQ(make_planner("alg1", opts)->name(), "alg1-greedy");
    EXPECT_EQ(make_planner("benchmark")->name(), "benchmark");
}

}  // namespace
}  // namespace uavdc::core
