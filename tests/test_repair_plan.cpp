#include "uavdc/core/repair_plan.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"
#include "uavdc/core/algorithm3.hpp"
#include "uavdc/core/evaluate.hpp"
#include "uavdc/workload/transforms.hpp"

namespace uavdc::core {
namespace {

using testing::small_instance;

model::FlightPlan plan_for(const model::Instance& inst) {
    Algorithm3Config cfg;
    cfg.candidates.delta_m = 20.0;
    cfg.k = 2;
    return PartialCollectionPlanner(cfg).plan(inst).plan;
}

TEST(RepairPlan, VolumePreservedWhenNothingChanged) {
    const auto inst = small_instance(25, 280.0, 101);
    const auto plan = plan_for(inst);
    const auto rep = repair_plan(inst, plan);
    EXPECT_EQ(rep.stops_dropped, 0);
    // Repair may legally trim a little slack (the planner budgets dwell in
    // insertion order, execution drains in tour order), but never at the
    // cost of volume.
    EXPECT_LT(rep.dwell_trimmed_s, 0.1 * plan.hover_time());
    EXPECT_NEAR(evaluate_plan(inst, rep.plan).collected_mb,
                evaluate_plan(inst, plan).collected_mb, 1e-6);
}

TEST(RepairPlan, TrimsDwellWhenVolumesShrink) {
    const auto inst = small_instance(25, 280.0, 102);
    const auto plan = plan_for(inst);
    // Next round: devices hold half the data.
    const auto lighter = workload::with_volume_factor(inst, 0.5);
    const auto rep = repair_plan(lighter, plan);
    EXPECT_GT(rep.dwell_trimmed_s, 0.0);
    EXPECT_GT(rep.energy_freed_j, 0.0);
    // Still collects everything the stops cover.
    EXPECT_NEAR(evaluate_plan(lighter, rep.plan).collected_mb,
                evaluate_plan(lighter, plan).collected_mb, 1e-6);
    EXPECT_TRUE(rep.plan.feasible(lighter.depot, lighter.uav, 1e-6));
}

TEST(RepairPlan, DropsStopsWhenDataVanishes) {
    const auto inst = small_instance(25, 280.0, 103);
    const auto plan = plan_for(inst);
    const auto empty = workload::with_volume_factor(inst, 0.0);
    const auto rep = repair_plan(empty, plan);
    EXPECT_EQ(rep.plan.num_stops(), 0u);
    EXPECT_EQ(rep.stops_dropped, static_cast<int>(plan.num_stops()));
}

TEST(RepairPlan, NeverLengthensDwellWhenVolumesGrow) {
    // Repair only removes energy; growth needs a fresh plan.
    const auto inst = small_instance(20, 250.0, 104);
    const auto plan = plan_for(inst);
    const auto heavier = workload::with_volume_factor(inst, 3.0);
    const auto rep = repair_plan(heavier, plan);
    ASSERT_EQ(rep.plan.num_stops(), plan.num_stops());
    double old_dwell = 0.0;
    double new_dwell = 0.0;
    for (const auto& s : plan.stops) old_dwell += s.dwell_s;
    for (const auto& s : rep.plan.stops) new_dwell += s.dwell_s;
    EXPECT_LE(new_dwell, old_dwell + 1e-9);
    EXPECT_TRUE(rep.plan.feasible(heavier.depot, heavier.uav, 1e-6));
}

TEST(RepairPlan, FeasibilityPreserved) {
    for (std::uint64_t seed : {105u, 106u}) {
        const auto inst = small_instance(30, 300.0, seed);
        const auto plan = plan_for(inst);
        for (double f : {0.1, 0.5, 0.9}) {
            const auto varied = workload::with_volume_factor(inst, f);
            const auto rep = repair_plan(varied, plan);
            EXPECT_TRUE(rep.plan.feasible(varied.depot, varied.uav, 1e-6))
                << "seed " << seed << " f " << f;
        }
    }
}

TEST(RepairPlan, EmptyPreviousPlan) {
    const auto inst = small_instance(10, 200.0, 107);
    const auto rep = repair_plan(inst, {});
    EXPECT_TRUE(rep.plan.empty());
    EXPECT_EQ(rep.stops_dropped, 0);
}

}  // namespace
}  // namespace uavdc::core
