#include "uavdc/util/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace uavdc::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a.next_u64(), b.next_u64());
    }
}

TEST(Rng, DifferentSeedsDiffer) {
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next_u64() == b.next_u64()) ++same;
    }
    EXPECT_LT(same, 2);
}

TEST(Rng, ReseedResets) {
    Rng a(7);
    const auto x = a.next_u64();
    a.next_u64();
    a.reseed(7);
    EXPECT_EQ(a.next_u64(), x);
}

TEST(Rng, UniformInUnitInterval) {
    Rng r(3);
    for (int i = 0; i < 10000; ++i) {
        const double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRangeRespected) {
    Rng r(4);
    for (int i = 0; i < 1000; ++i) {
        const double u = r.uniform(-5.0, 5.0);
        EXPECT_GE(u, -5.0);
        EXPECT_LT(u, 5.0);
    }
}

TEST(Rng, UniformMeanRoughlyCentered) {
    Rng r(5);
    double s = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) s += r.uniform();
    EXPECT_NEAR(s / n, 0.5, 0.01);
}

TEST(Rng, UniformIntInclusiveBounds) {
    Rng r(6);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const auto v = r.uniform_int(2, 5);
        EXPECT_GE(v, 2);
        EXPECT_LE(v, 5);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 4u);  // all 4 values hit in 1000 draws
}

TEST(Rng, UniformIntSingleValue) {
    Rng r(7);
    for (int i = 0; i < 10; ++i) EXPECT_EQ(r.uniform_int(9, 9), 9);
}

TEST(Rng, UniformIntNegativeRange) {
    Rng r(8);
    for (int i = 0; i < 200; ++i) {
        const auto v = r.uniform_int(-10, -5);
        EXPECT_GE(v, -10);
        EXPECT_LE(v, -5);
    }
}

TEST(Rng, NormalMoments) {
    Rng r(9);
    const int n = 200000;
    double s = 0.0, s2 = 0.0;
    for (int i = 0; i < n; ++i) {
        const double x = r.normal();
        s += x;
        s2 += x * x;
    }
    EXPECT_NEAR(s / n, 0.0, 0.02);
    EXPECT_NEAR(s2 / n, 1.0, 0.03);
}

TEST(Rng, NormalShifted) {
    Rng r(10);
    double s = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) s += r.normal(10.0, 2.0);
    EXPECT_NEAR(s / n, 10.0, 0.1);
}

TEST(Rng, ExponentialMean) {
    Rng r(11);
    double s = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const double x = r.exponential(3.0);
        EXPECT_GE(x, 0.0);
        s += x;
    }
    EXPECT_NEAR(s / n, 3.0, 0.1);
}

TEST(Rng, BernoulliFrequency) {
    Rng r(12);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        if (r.bernoulli(0.3)) ++hits;
    }
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, SplitStreamsIndependentAndDeterministic) {
    const Rng parent(77);
    Rng c1 = parent.split(1);
    Rng c1_again = parent.split(1);
    Rng c2 = parent.split(2);
    EXPECT_EQ(c1.next_u64(), c1_again.next_u64());
    // Different streams should diverge immediately (overwhelmingly likely).
    Rng d1 = parent.split(1);
    EXPECT_NE(d1.next_u64(), c2.next_u64());
}

TEST(Rng, WorksWithUniformRandomBitGeneratorConcept) {
    EXPECT_EQ(Rng::min(), 0u);
    EXPECT_EQ(Rng::max(), ~std::uint64_t{0});
    Rng r(13);
    const auto v = r();
    (void)v;
}

}  // namespace
}  // namespace uavdc::util
