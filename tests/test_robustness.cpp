#include <gtest/gtest.h>

#include "uavdc/util/check.hpp"

#include "test_util.hpp"
#include "uavdc/core/algorithm2.hpp"
#include "uavdc/core/sensitivity.hpp"
#include "uavdc/sim/monte_carlo.hpp"

namespace uavdc {
namespace {

using testing::small_instance;

model::FlightPlan plan_for(const model::Instance& inst) {
    core::Algorithm2Config cfg;
    cfg.candidates.delta_m = 20.0;
    return core::GreedyCoveragePlanner(cfg).plan(inst).plan;
}

TEST(MonteCarlo, NoDisturbanceIsDeterministicBaseline) {
    const auto inst = small_instance(25, 280.0, 111);
    const auto plan = plan_for(inst);
    sim::DisturbanceModel calm;
    calm.wind_max_mps = 0.0;
    calm.taper_max = 0.0;
    const auto rep = sim::evaluate_robustness(inst, plan, calm, 16);
    EXPECT_EQ(rep.trials, 16);
    EXPECT_DOUBLE_EQ(rep.completion_rate, 1.0);
    EXPECT_NEAR(rep.p10_gb, rep.p90_gb, 1e-9);  // zero variance
    EXPECT_NEAR(rep.mean_gb, rep.worst_gb, 1e-9);
}

TEST(MonteCarlo, DisturbanceDegradesOutcomes) {
    auto inst = small_instance(25, 280.0, 112);
    // Leave a little margin so light wind doesn't kill every sortie.
    const auto plan = plan_for(inst);
    sim::DisturbanceModel rough;
    rough.wind_max_mps = 4.0;
    rough.taper_max = 0.5;
    const auto calm_rep =
        sim::evaluate_robustness(inst, plan, {0.0, 0.0, false}, 16);
    const auto rough_rep =
        sim::evaluate_robustness(inst, plan, rough, 48);
    EXPECT_LT(rough_rep.mean_gb, calm_rep.mean_gb + 1e-9);
    EXPECT_LE(rough_rep.completion_rate, calm_rep.completion_rate + 1e-9);
    EXPECT_LE(rough_rep.p10_gb, rough_rep.p90_gb);
    EXPECT_LE(rough_rep.worst_gb, rough_rep.p10_gb + 1e-9);
}

TEST(MonteCarlo, DeterministicForFixedSeed) {
    const auto inst = small_instance(20, 250.0, 113);
    const auto plan = plan_for(inst);
    const auto a = sim::evaluate_robustness(inst, plan, {}, 24, 9);
    const auto b = sim::evaluate_robustness(inst, plan, {}, 24, 9);
    EXPECT_DOUBLE_EQ(a.mean_gb, b.mean_gb);
    EXPECT_DOUBLE_EQ(a.completion_rate, b.completion_rate);
}

TEST(MonteCarlo, BitIdenticalAcrossThreadCounts) {
    // Per-trial RNG streams derive from (seed, index) and each trial
    // writes its own slot, so the report must be bit-identical whether the
    // trials run sequentially or across N workers.
    const auto inst = small_instance(20, 250.0, 115);
    const auto plan = plan_for(inst);
    util::ThreadPool one(1);
    util::ThreadPool many(4);
    const sim::DisturbanceModel model{};  // default wind + taper
    const auto a = sim::evaluate_robustness(inst, plan, model, 33, 42, one);
    const auto b = sim::evaluate_robustness(inst, plan, model, 33, 42, many);
    EXPECT_EQ(a.trials, b.trials);
    EXPECT_EQ(a.mean_gb, b.mean_gb);              // exact, not NEAR
    EXPECT_EQ(a.mean_energy_j, b.mean_energy_j);
    EXPECT_EQ(a.completion_rate, b.completion_rate);
    EXPECT_EQ(a.p10_gb, b.p10_gb);
    EXPECT_EQ(a.p90_gb, b.p90_gb);
    EXPECT_EQ(a.worst_gb, b.worst_gb);
    // And against the global-pool overload with the same seed.
    const auto c = sim::evaluate_robustness(inst, plan, model, 33, 42);
    EXPECT_EQ(a.mean_gb, c.mean_gb);
}

TEST(MonteCarlo, ZeroTrials) {
    const auto inst = small_instance(5, 100.0, 114);
    const auto rep = sim::evaluate_robustness(inst, {}, {}, 0);
    EXPECT_EQ(rep.trials, 0);
}

TEST(Sensitivity, CoversTheOperatorKnobs) {
    const auto inst = small_instance(25, 280.0, 115);
    core::PlannerOptions opts;
    opts.delta_m = 20.0;
    const auto entries = core::analyze_sensitivity(inst, "alg2", opts);
    ASSERT_EQ(entries.size(), 5u);
    EXPECT_EQ(entries[0].parameter, "energy_j");
    for (const auto& e : entries) {
        EXPECT_GT(e.baseline_value, 0.0) << e.parameter;
        EXPECT_GE(e.up_gb, 0.0) << e.parameter;
        EXPECT_GE(e.down_gb, 0.0) << e.parameter;
    }
}

TEST(Sensitivity, MoreEnergyNeverHurts) {
    const auto inst = small_instance(30, 300.0, 116);
    core::PlannerOptions opts;
    opts.delta_m = 20.0;
    const auto entries = core::analyze_sensitivity(inst, "alg2", opts, 0.3);
    const auto& energy = entries[0];
    EXPECT_GE(energy.up_gb, energy.down_gb - 1e-6);
    EXPECT_GE(energy.elasticity, -1e-6);
}

TEST(Sensitivity, TravelCostHasNonPositiveElasticity) {
    const auto inst = small_instance(30, 300.0, 117);
    core::PlannerOptions opts;
    opts.delta_m = 20.0;
    const auto entries = core::analyze_sensitivity(inst, "alg2", opts, 0.3);
    for (const auto& e : entries) {
        if (e.parameter == "travel_rate" ||
            e.parameter == "hover_power_w") {
            EXPECT_LE(e.elasticity, 1e-6) << e.parameter;
        }
    }
}

TEST(Sensitivity, RejectsBadPerturbation) {
    const auto inst = small_instance(5, 100.0, 118);
    EXPECT_THROW(
        (void)core::analyze_sensitivity(inst, "alg2", {}, 0.0),
        util::ContractViolation);
    EXPECT_THROW(
        (void)core::analyze_sensitivity(inst, "alg2", {}, 1.0),
        util::ContractViolation);
}

}  // namespace
}  // namespace uavdc
