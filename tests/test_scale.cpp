// Paper-scale smoke test: every planner handles the full Sec. VII-A
// setting (500 devices, 1 km^2, E = 3e5 J) within CI-friendly time, stays
// energy-feasible, and preserves the paper's headline ordering.

#include <gtest/gtest.h>

#include "uavdc/core/evaluate.hpp"
#include "uavdc/core/registry.hpp"
#include "uavdc/sim/simulator.hpp"
#include "uavdc/workload/presets.hpp"

namespace uavdc {
namespace {

class PaperScale : public ::testing::Test {
  protected:
    static const model::Instance& instance() {
        static const model::Instance inst =
            workload::generate(workload::paper_default(), 2024);
        return inst;
    }
    static core::PlannerOptions options() {
        core::PlannerOptions opts;
        opts.delta_m = 10.0;
        opts.max_candidates = 2000;
        opts.grasp_iterations = 6;
        return opts;
    }
};

TEST_F(PaperScale, AllPlannersFeasibleAndSimConsistent) {
    const auto& inst = instance();
    for (const auto& name : core::planner_names()) {
        auto planner = core::make_planner(name, options());
        const auto res = planner->plan(inst);
        EXPECT_TRUE(res.plan.feasible(inst.depot, inst.uav, 1e-6)) << name;
        const auto ev = core::evaluate_plan(inst, res.plan);
        sim::SimConfig scfg;
        scfg.record_trace = false;
        const auto rep = sim::Simulator(scfg).run(inst, res.plan);
        EXPECT_TRUE(rep.completed) << name;
        EXPECT_NEAR(rep.collected_mb, ev.collected_mb, 1e-5) << name;
    }
}

TEST_F(PaperScale, HeadlineOrderingHolds) {
    const auto& inst = instance();
    auto volume = [&](const std::string& name) {
        return core::evaluate_plan(
                   inst, core::make_planner(name, options())->plan(inst).plan)
            .collected_mb;
    };
    const double alg2 = volume("alg2");
    const double alg3 = volume("alg3");
    const double bench = volume("benchmark");
    const double kmeans = volume("kmeans");
    // Paper's thesis at paper scale: overlap-aware grid planners beat the
    // per-node pruning benchmark decisively; naive clustering trails all.
    EXPECT_GT(alg2, 1.5 * bench);
    EXPECT_GT(alg3, 1.5 * bench);
    EXPECT_GE(alg3, 0.95 * alg2);
    EXPECT_GT(bench, kmeans);
}

TEST_F(PaperScale, ScarcityIsRealAtDefaultBudget) {
    // At E = 3e5 J the field must NOT be fully collectible (otherwise all
    // the paper's sweeps would be saturated — the calibration trap that
    // motivated DESIGN.md substitution #5).
    const auto& inst = instance();
    const double alg2 = core::evaluate_plan(
                            inst, core::make_planner("alg2", options())
                                      ->plan(inst)
                                      .plan)
                            .collected_mb;
    EXPECT_LT(alg2, 0.5 * inst.total_data_mb());
    EXPECT_GT(alg2, 0.1 * inst.total_data_mb());
}

}  // namespace
}  // namespace uavdc
