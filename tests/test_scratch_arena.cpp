// ScratchArena + PlanningContext arena-pool tests: bump allocation,
// reset-with-coalesce, LIFO lease recycling, and the warm-path contract —
// repeated plan() calls on a warmed context allocate zero new chunks.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory_resource>
#include <vector>

#include "test_util.hpp"
#include "uavdc/core/algorithm2.hpp"
#include "uavdc/core/algorithm3.hpp"
#include "uavdc/core/planning_context.hpp"
#include "uavdc/core/scratch_arena.hpp"

namespace uavdc::core {
namespace {

TEST(ScratchArena, BumpAllocatesAndResetsWithoutFreeing) {
    ScratchArena arena(1024);
    EXPECT_EQ(arena.chunks_allocated(), 1u);
    EXPECT_EQ(arena.bytes_in_use(), 0u);

    std::pmr::vector<double> v(100, 1.5, &arena);
    EXPECT_GE(arena.bytes_in_use(), 100 * sizeof(double));
    const std::size_t after_v = arena.bytes_in_use();
    {
        std::pmr::vector<int> w(10, 7, &arena);
        EXPECT_GT(arena.bytes_in_use(), after_v);
    }
    // Deallocation is a no-op; reset rewinds everything at once.
    v = std::pmr::vector<double>(&arena);  // release before reset
    arena.reset();
    EXPECT_EQ(arena.bytes_in_use(), 0u);
    EXPECT_GE(arena.capacity(), 1024u);
}

TEST(ScratchArena, AllocationsAreSoaAligned) {
    ScratchArena arena(512);
    for (const std::size_t bytes : {8u, 24u, 100u, 4096u}) {
        void* p = arena.allocate(bytes, alignof(double));
        EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 32, 0u)
            << bytes << " bytes";
    }
}

TEST(ScratchArena, OverflowGrowsThenResetCoalesces) {
    ScratchArena arena(256);
    EXPECT_EQ(arena.chunks_allocated(), 1u);
    // Overflow the first chunk several times.
    (void)arena.allocate(200, 8);
    (void)arena.allocate(300, 8);
    (void)arena.allocate(5000, 8);
    const std::size_t grown = arena.chunks_allocated();
    EXPECT_GT(grown, 1u);
    const std::size_t cap = arena.capacity();

    arena.reset();
    // One coalesced chunk of at least the combined capacity: the same
    // demand now fits without another malloc.
    EXPECT_EQ(arena.chunks_allocated(), grown + 1);
    EXPECT_GE(arena.capacity(), cap);
    (void)arena.allocate(200, 8);
    (void)arena.allocate(300, 8);
    (void)arena.allocate(5000, 8);
    EXPECT_EQ(arena.chunks_allocated(), grown + 1);
}

TEST(PlanningContext, ArenaLeasesRecycleLifo) {
    const auto inst = testing::small_instance(20, 200.0, 3);
    const auto ctx = PlanningContext::build(inst, {});
    EXPECT_EQ(ctx->arena_pool_size(), 0u);
    const ScratchArena* first = nullptr;
    {
        ArenaLease lease = ctx->acquire_arena();
        first = &lease.arena();
        (void)lease.resource()->allocate(64, 8);
    }
    EXPECT_EQ(ctx->arena_pool_size(), 1u);
    {
        ArenaLease lease = ctx->acquire_arena();
        // Same arena comes back (LIFO), rewound by the lease destructor.
        EXPECT_EQ(&lease.arena(), first);
        EXPECT_EQ(lease.arena().bytes_in_use(), 0u);
        ArenaLease second = ctx->acquire_arena();
        EXPECT_NE(&second.arena(), &lease.arena());
    }
    EXPECT_EQ(ctx->arena_pool_size(), 2u);
}

/// The warm-path contract behind the SoA rework: after a couple of warm-up
/// plans, repeated plan() calls on the same context reuse the pooled
/// arena's coalesced block — chunks_allocated() stays flat, i.e. the hot
/// path performs zero scratch mallocs.
TEST(PlanningContext, WarmPlansAllocateNoNewChunks) {
    const auto inst = testing::small_instance(40, 300.0, 9);
    Algorithm2Config cfg2;
    Algorithm3Config cfg3;
    cfg3.k = 3;
    const auto ctx = PlanningContext::build(inst, cfg2.candidates);

    GreedyCoveragePlanner alg2(cfg2);
    PartialCollectionPlanner alg3(cfg3);
    // Warm-up: first run grows the arena, second consolidates it.
    (void)alg2.plan(*ctx);
    (void)alg2.plan(*ctx);
    (void)alg3.plan(*ctx);
    (void)alg3.plan(*ctx);

    std::vector<std::size_t> snapshot;
    {
        ArenaLease lease = ctx->acquire_arena();
        snapshot.push_back(lease.arena().chunks_allocated());
    }
    for (int round = 0; round < 5; ++round) {
        const auto a = alg2.plan(*ctx);
        const auto b = alg3.plan(*ctx);
        EXPECT_GT(a.stats.candidates, 0);
        EXPECT_GT(b.stats.candidates, 0);
    }
    {
        ArenaLease lease = ctx->acquire_arena();
        EXPECT_EQ(lease.arena().chunks_allocated(), snapshot.front())
            << "warm plan() calls must not allocate new arena chunks";
    }
}

}  // namespace
}  // namespace uavdc::core
