#include "uavdc/io/serialize.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "test_util.hpp"
#include "uavdc/core/algorithm2.hpp"
#include "uavdc/io/svg.hpp"
#include "uavdc/workload/presets.hpp"

namespace uavdc::io {
namespace {

TEST(Serialize, InstanceRoundTrip) {
    const auto inst = testing::small_instance(25, 300.0, 9);
    const auto doc = to_json(inst);
    const auto back = instance_from_json(doc);
    EXPECT_EQ(back.name, inst.name);
    EXPECT_DOUBLE_EQ(back.region.width(), inst.region.width());
    EXPECT_EQ(back.depot, inst.depot);
    EXPECT_DOUBLE_EQ(back.uav.energy_j, inst.uav.energy_j);
    EXPECT_DOUBLE_EQ(back.uav.bandwidth_mbps, inst.uav.bandwidth_mbps);
    ASSERT_EQ(back.devices.size(), inst.devices.size());
    for (std::size_t i = 0; i < inst.devices.size(); ++i) {
        EXPECT_EQ(back.devices[i].pos, inst.devices[i].pos);
        EXPECT_DOUBLE_EQ(back.devices[i].data_mb, inst.devices[i].data_mb);
        EXPECT_EQ(back.devices[i].id, static_cast<int>(i));
    }
}

TEST(Serialize, PlanRoundTrip) {
    model::FlightPlan plan;
    plan.stops.push_back({{10.5, 20.25}, 3.5, 7});
    plan.stops.push_back({{-1.0, 0.0}, 0.0, -1});
    const auto back = plan_from_json(to_json(plan));
    ASSERT_EQ(back.stops.size(), 2u);
    EXPECT_EQ(back.stops[0].pos, geom::Vec2(10.5, 20.25));
    EXPECT_DOUBLE_EQ(back.stops[0].dwell_s, 3.5);
    EXPECT_EQ(back.stops[0].cell_id, 7);
    EXPECT_EQ(back.stops[1].cell_id, -1);
}

TEST(Serialize, EvaluationToJson) {
    const auto inst = testing::small_instance(10, 200.0, 3);
    core::Algorithm2Config cfg;
    cfg.candidates.delta_m = 25.0;
    const auto res = core::GreedyCoveragePlanner(cfg).plan(inst);
    const auto ev = core::evaluate_plan(inst, res.plan);
    const auto doc = to_json(ev);
    EXPECT_DOUBLE_EQ(doc.at("collected_mb").as_number(), ev.collected_mb);
    EXPECT_EQ(doc.at("energy_feasible").as_bool(), ev.energy_feasible);
}

TEST(Serialize, FileRoundTrip) {
    const std::string ipath = ::testing::TempDir() + "/uavdc_inst.json";
    const std::string ppath = ::testing::TempDir() + "/uavdc_plan.json";
    const auto inst = testing::small_instance(15, 250.0, 4);
    save_instance(ipath, inst);
    const auto loaded = load_instance(ipath);
    EXPECT_EQ(loaded.devices.size(), inst.devices.size());

    core::Algorithm2Config cfg;
    cfg.candidates.delta_m = 25.0;
    const auto res = core::GreedyCoveragePlanner(cfg).plan(inst);
    save_plan(ppath, res.plan);
    const auto plan = load_plan(ppath);
    EXPECT_EQ(plan.stops.size(), res.plan.stops.size());
    // The reloaded plan evaluates identically.
    EXPECT_DOUBLE_EQ(core::evaluate_plan(loaded, plan).collected_mb,
                     core::evaluate_plan(inst, res.plan).collected_mb);
    std::remove(ipath.c_str());
    std::remove(ppath.c_str());
}

TEST(Serialize, LoadedInstanceIsValidated) {
    Json doc = to_json(testing::small_instance(5, 100.0, 1));
    doc["devices"].as_array()[0]["data_mb"] = -5.0;
    EXPECT_THROW(instance_from_json(doc), std::invalid_argument);
}

TEST(Svg, RendersInstanceAndPlan) {
    const auto inst = testing::small_instance(20, 250.0, 5);
    core::Algorithm2Config cfg;
    cfg.candidates.delta_m = 25.0;
    const auto res = core::GreedyCoveragePlanner(cfg).plan(inst);
    const std::string svg = render_svg(inst, &res.plan);
    EXPECT_EQ(svg.rfind("<svg", 0), 0u);
    EXPECT_NE(svg.find("</svg>"), std::string::npos);
    EXPECT_NE(svg.find("polyline"), std::string::npos);  // tour drawn
    EXPECT_NE(svg.find("depot"), std::string::npos);
    // One circle per device plus stop/coverage circles.
    std::size_t circles = 0;
    for (std::size_t pos = svg.find("<circle"); pos != std::string::npos;
         pos = svg.find("<circle", pos + 1)) {
        ++circles;
    }
    EXPECT_GE(circles, inst.devices.size());
}

TEST(Svg, RendersWithoutPlan) {
    const auto inst = testing::small_instance(10, 200.0, 6);
    const std::string svg = render_svg(inst);
    EXPECT_EQ(svg.find("polyline"), std::string::npos);
    EXPECT_NE(svg.find("</svg>"), std::string::npos);
}

TEST(Svg, SaveToFile) {
    const std::string path = ::testing::TempDir() + "/uavdc_field.svg";
    const auto inst = testing::small_instance(8, 150.0, 7);
    save_svg(path, inst);
    std::ifstream in(path);
    EXPECT_TRUE(in.good());
    std::remove(path.c_str());
}

}  // namespace
}  // namespace uavdc::io
