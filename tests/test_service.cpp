#include "uavdc/service/plan_service.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <future>
#include <map>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "uavdc/core/planning_context.hpp"
#include "uavdc/core/registry.hpp"
#include "uavdc/io/serialize.hpp"
#include "uavdc/service/jsonl.hpp"
#include "uavdc/service/request.hpp"
#include "uavdc/service/workload_gen.hpp"
#include "uavdc/util/thread_pool.hpp"

#include "test_util.hpp"

namespace uavdc::service {
namespace {

PlanRequest make_request(std::string id, std::string planner,
                         const model::Instance& inst) {
    PlanRequest req;
    req.id = std::move(id);
    req.planner = std::move(planner);
    req.instance = inst;
    return req;
}

/// Deterministic identity of a result payload: the serialized plan plus
/// every stats field except wall-clock runtime. Two runs of the same
/// (instance, planner, options) must agree on this key bit for bit.
std::string result_key(const io::Json& result) {
    io::Json key;
    key["plan"] = result.at("plan");
    key["planner"] = result.at("planner");
    key["instance_fingerprint"] = result.at("instance_fingerprint");
    const io::Json& stats = result.at("stats");
    key["planned_mb"] = stats.at("planned_mb");
    key["planned_energy_j"] = stats.at("planned_energy_j");
    key["iterations"] = stats.at("iterations");
    key["candidates"] = stats.at("candidates");
    return key.dump();
}

/// The same plan computed straight through the registry — the reference the
/// service must match byte for byte.
std::string direct_key(const model::Instance& inst,
                       const std::string& planner,
                       const core::PlannerOptions& opts) {
    const auto ctx = core::PlanningContext::obtain(inst, opts.hover_config());
    const auto impl = core::make_planner(planner, opts);
    const auto res = impl->plan(*ctx);
    io::Json key;
    key["plan"] = io::to_json(res.plan);
    key["planner"] = impl->name();  // display name, e.g. "alg2-greedy"
    key["instance_fingerprint"] = fingerprint_to_hex(
        core::PlanningContext::instance_fingerprint(inst));
    key["planned_mb"] = res.stats.planned_mb;
    key["planned_energy_j"] = res.stats.planned_energy_j;
    key["iterations"] = res.stats.iterations;
    key["candidates"] = res.stats.candidates;
    return key.dump();
}

core::PlannerOptions fast_options() {
    core::PlannerOptions opts;
    opts.delta_m = 25.0;
    opts.grasp_iterations = 3;
    return opts;
}

TEST(ServiceRequest, JsonRoundTrip) {
    const auto inst = uavdc::testing::small_instance(12, 200.0, 31);
    PlanRequest req = make_request("req-7", "alg3", inst);
    req.overrides.delta_m = 17.5;
    req.overrides.k = 3;
    req.overrides.scoring = core::ScoringEngine::kReference;
    req.overrides.solver = orienteering::SolverKind::kGrasp;
    req.priority = 4;
    req.deadline_ms = 250.0;

    const PlanRequest back = request_from_json(to_json(req));
    EXPECT_EQ(back.id, "req-7");
    EXPECT_EQ(back.planner, "alg3");
    ASSERT_TRUE(back.instance.has_value());
    EXPECT_EQ(core::PlanningContext::instance_fingerprint(*back.instance),
              core::PlanningContext::instance_fingerprint(inst));
    EXPECT_EQ(back.overrides.delta_m, 17.5);
    EXPECT_EQ(back.overrides.k, 3);
    EXPECT_EQ(back.overrides.scoring, core::ScoringEngine::kReference);
    EXPECT_EQ(back.overrides.solver, orienteering::SolverKind::kGrasp);
    EXPECT_FALSE(back.overrides.max_candidates.has_value());
    EXPECT_EQ(back.priority, 4);
    EXPECT_EQ(back.deadline_ms, 250.0);

    // Reference form survives too.
    PlanRequest ref;
    ref.id = "by-ref";
    ref.planner = "alg2";
    ref.instance_ref = 0xdeadbeefcafef00dULL;
    const PlanRequest ref_back = request_from_json(to_json(ref));
    ASSERT_TRUE(ref_back.instance_ref.has_value());
    EXPECT_EQ(*ref_back.instance_ref, 0xdeadbeefcafef00dULL);
}

TEST(ServiceRequest, FingerprintHexCodec) {
    for (const std::uint64_t fp :
         {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{0xabcdef0123456789},
          ~std::uint64_t{0}}) {
        const std::string hex = fingerprint_to_hex(fp);
        EXPECT_EQ(hex.size(), 16u);
        EXPECT_EQ(fingerprint_from_hex(hex), fp);
    }
    EXPECT_THROW((void)fingerprint_from_hex("xyz"), std::runtime_error);
    EXPECT_THROW((void)fingerprint_from_hex(""), std::runtime_error);
}

TEST(ServiceRequest, MalformedRequestsThrow) {
    const auto inst = uavdc::testing::small_instance(8, 150.0, 32);
    io::Json ok = to_json(make_request("a", "alg2", inst));

    io::Json no_id = ok;
    no_id.as_object().erase("id");
    EXPECT_THROW((void)request_from_json(no_id), std::runtime_error);

    io::Json no_planner = ok;
    no_planner.as_object().erase("planner");
    EXPECT_THROW((void)request_from_json(no_planner), std::runtime_error);

    io::Json both = ok;
    both["instance_ref"] = fingerprint_to_hex(1);
    EXPECT_THROW((void)request_from_json(both), std::runtime_error);

    io::Json neither = ok;
    neither.as_object().erase("instance");
    EXPECT_THROW((void)request_from_json(neither), std::runtime_error);

    EXPECT_THROW((void)request_from_json(io::Json("not an object")),
                 std::runtime_error);
}

TEST(ServiceRequest, ResponseRoundTrip) {
    PlanResponse resp;
    resp.id = "r1";
    resp.status = ResponseStatus::kDeadlineExceeded;
    resp.error = "deadline expired";
    resp.partial = true;
    resp.queue_ms = 1.5;
    resp.exec_ms = 2.5;
    const PlanResponse back = response_from_json(to_json(resp));
    EXPECT_EQ(back.id, "r1");
    EXPECT_EQ(back.status, ResponseStatus::kDeadlineExceeded);
    EXPECT_EQ(back.error, "deadline expired");
    EXPECT_TRUE(back.partial);
    EXPECT_FALSE(back.cache_hit);
    EXPECT_EQ(back.queue_ms, 1.5);
    EXPECT_EQ(back.exec_ms, 2.5);
}

TEST(Service, ExecuteMatchesDirectRegistryCall) {
    const auto inst = uavdc::testing::small_instance(20, 260.0, 41);
    PlanService::Config cfg;
    cfg.workers = 2;
    cfg.defaults = fast_options();
    PlanService svc(cfg);

    for (const std::string planner : {"alg2", "benchmark", "kmeans"}) {
        const PlanResponse resp =
            svc.execute(make_request("x-" + planner, planner, inst));
        ASSERT_EQ(resp.status, ResponseStatus::kOk) << resp.error;
        EXPECT_EQ(result_key(resp.result),
                  direct_key(inst, planner, cfg.defaults));
    }
}

TEST(Service, PerRequestOverridesChangeTheResolvedOptions) {
    const auto inst = uavdc::testing::small_instance(20, 260.0, 42);
    PlanService::Config cfg;
    cfg.workers = 2;
    cfg.defaults = fast_options();
    PlanService svc(cfg);

    PlanRequest req = make_request("coarse", "alg2", inst);
    req.overrides.delta_m = 60.0;
    const PlanResponse resp = svc.execute(req);
    ASSERT_EQ(resp.status, ResponseStatus::kOk) << resp.error;

    core::PlannerOptions coarse = cfg.defaults;
    coarse.delta_m = 60.0;
    EXPECT_EQ(result_key(resp.result), direct_key(inst, "alg2", coarse));
    // And it is genuinely different from the default-options plan.
    EXPECT_NE(result_key(resp.result),
              direct_key(inst, "alg2", cfg.defaults));
}

TEST(Service, ExactlyOneResponsePerRequestUnderConcurrentProducers) {
    const auto inst_a = uavdc::testing::small_instance(16, 220.0, 51);
    const auto inst_b = uavdc::testing::small_instance(22, 300.0, 52);
    PlanService::Config cfg;
    cfg.workers = 4;
    cfg.defaults = fast_options();
    PlanService svc(cfg);

    constexpr int kProducers = 4;
    constexpr int kPerProducer = 16;
    std::mutex mu;
    std::map<std::string, int> seen;        // id -> response count
    std::map<std::string, int> statuses;    // status string -> count

    util::ThreadPool producers(kProducers);
    std::vector<std::future<void>> futs;
    for (int p = 0; p < kProducers; ++p) {
        futs.push_back(producers.submit([&, p] {
            const std::vector<std::string> planners = {"alg2", "benchmark",
                                                       "kmeans", "sweep"};
            for (int i = 0; i < kPerProducer; ++i) {
                PlanRequest req = make_request(
                    "p" + std::to_string(p) + "-" + std::to_string(i),
                    planners[static_cast<std::size_t>(i) % planners.size()],
                    (i % 2 == 0) ? inst_a : inst_b);
                req.priority = i % 3;
                svc.submit(std::move(req), [&](PlanResponse resp) {
                    std::lock_guard lock(mu);
                    ++seen[resp.id];
                    ++statuses[to_string(resp.status)];
                });
            }
        }));
    }
    for (auto& f : futs) f.get();
    svc.drain();

    ASSERT_EQ(seen.size(),
              static_cast<std::size_t>(kProducers * kPerProducer));
    for (const auto& [id, count] : seen) {
        EXPECT_EQ(count, 1) << "id " << id << " answered " << count
                            << " times";
    }
    EXPECT_EQ(statuses["ok"], kProducers * kPerProducer);

    const ServiceStats stats = svc.stats();
    EXPECT_EQ(stats.submitted,
              static_cast<std::uint64_t>(kProducers * kPerProducer));
    EXPECT_EQ(stats.completed, stats.submitted);
    EXPECT_EQ(stats.queue_depth, 0u);
    EXPECT_EQ(stats.in_flight, 0u);
    EXPECT_GT(stats.cache_hits + stats.cache_misses, 0u);
}

TEST(Service, ConcurrentResponsesBitIdenticalToSerialExecution) {
    const auto inst = uavdc::testing::small_instance(18, 240.0, 61);
    PlanService::Config cfg;
    cfg.workers = 4;
    cfg.defaults = fast_options();

    const std::vector<std::string> planners = {"alg2", "alg3", "benchmark",
                                               "kmeans", "sweep"};
    std::mutex mu;
    std::map<std::string, std::string> keys;  // id -> result identity
    {
        PlanService svc(cfg);
        for (int round = 0; round < 3; ++round) {
            for (const auto& planner : planners) {
                svc.submit(
                    make_request(planner + "#" + std::to_string(round),
                                 planner, inst),
                    [&](PlanResponse resp) {
                        ASSERT_EQ(resp.status, ResponseStatus::kOk)
                            << resp.error;
                        std::lock_guard lock(mu);
                        keys[resp.id] = result_key(resp.result);
                    });
            }
        }
        svc.drain();
    }

    for (const auto& planner : planners) {
        const std::string expected = direct_key(inst, planner, cfg.defaults);
        for (int round = 0; round < 3; ++round) {
            EXPECT_EQ(keys.at(planner + "#" + std::to_string(round)),
                      expected)
                << planner << " diverged from the serial registry run";
        }
    }
}

TEST(Service, CacheHitPayloadEqualsMissPayload) {
    const auto inst = uavdc::testing::small_instance(16, 220.0, 71);
    PlanService::Config cfg;
    cfg.workers = 1;
    cfg.defaults = fast_options();
    PlanService svc(cfg);

    const PlanRequest req = make_request("first", "alg2", inst);
    const PlanResponse miss = svc.execute(req);
    ASSERT_EQ(miss.status, ResponseStatus::kOk) << miss.error;
    EXPECT_FALSE(miss.cache_hit);

    PlanRequest again = req;
    again.id = "second";
    const PlanResponse hit = svc.execute(again);
    ASSERT_EQ(hit.status, ResponseStatus::kOk) << hit.error;
    EXPECT_TRUE(hit.cache_hit);
    // Byte-identical payload, not merely equivalent.
    EXPECT_EQ(hit.result.dump(), miss.result.dump());

    const ServiceStats stats = svc.stats();
    EXPECT_EQ(stats.cache_hits, 1u);
    EXPECT_EQ(stats.cache_misses, 1u);
    EXPECT_DOUBLE_EQ(stats.cache_hit_rate(), 0.5);

    // A different planner or option set is a different cache key.
    PlanRequest other = req;
    other.id = "third";
    other.overrides.delta_m = 40.0;
    const PlanResponse third = svc.execute(other);
    ASSERT_EQ(third.status, ResponseStatus::kOk);
    EXPECT_FALSE(third.cache_hit);
}

TEST(Service, QueueFullRejectionsAreWellFormed) {
    const auto inst = uavdc::testing::small_instance(14, 200.0, 81);
    util::ThreadPool pool(1);
    std::promise<void> gate;
    auto blocker =
        pool.submit([f = gate.get_future().share()] { f.wait(); });

    PlanService::Config cfg;
    cfg.queue_capacity = 1;
    cfg.defaults = fast_options();
    PlanService svc(cfg, &pool);

    std::mutex mu;
    std::vector<PlanResponse> responses;
    const auto collect = [&](PlanResponse resp) {
        std::lock_guard lock(mu);
        responses.push_back(std::move(resp));
    };

    // The pool's only worker is parked on the gate, so the first request
    // sits in the admission queue and the second overflows it.
    EXPECT_TRUE(svc.submit(make_request("q1", "alg2", inst), collect));
    EXPECT_FALSE(svc.submit(make_request("q2", "alg2", inst), collect));
    {
        std::lock_guard lock(mu);
        ASSERT_EQ(responses.size(), 1u);  // rejection answered inline
        EXPECT_EQ(responses[0].id, "q2");
        EXPECT_EQ(responses[0].status, ResponseStatus::kOverloaded);
        EXPECT_NE(responses[0].error.find("queue full"), std::string::npos);
        EXPECT_TRUE(responses[0].result.is_null());
    }

    gate.set_value();
    blocker.get();
    svc.drain();
    {
        std::lock_guard lock(mu);
        ASSERT_EQ(responses.size(), 2u);
        EXPECT_EQ(responses[1].id, "q1");
        EXPECT_EQ(responses[1].status, ResponseStatus::kOk)
            << responses[1].error;
    }
    const ServiceStats stats = svc.stats();
    EXPECT_EQ(stats.rejected_overload, 1u);
    EXPECT_EQ(stats.submitted, 2u);
    EXPECT_EQ(stats.admitted, 1u);
    svc.shutdown();
}

TEST(Service, DeadlineExpiredInQueueIsWellFormed) {
    const auto inst = uavdc::testing::small_instance(14, 200.0, 82);
    util::ThreadPool pool(1);
    std::promise<void> gate;
    auto blocker =
        pool.submit([f = gate.get_future().share()] { f.wait(); });

    PlanService::Config cfg;
    cfg.defaults = fast_options();
    PlanService svc(cfg, &pool);

    std::mutex mu;
    std::vector<PlanResponse> responses;
    PlanRequest req = make_request("late", "alg2", inst);
    req.deadline_ms = 1.0;
    svc.submit(std::move(req), [&](PlanResponse resp) {
        std::lock_guard lock(mu);
        responses.push_back(std::move(resp));
    });

    // Hold the worker well past the 1 ms deadline before letting it pop.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    gate.set_value();
    blocker.get();
    svc.drain();

    std::lock_guard lock(mu);
    ASSERT_EQ(responses.size(), 1u);
    EXPECT_EQ(responses[0].id, "late");
    EXPECT_EQ(responses[0].status, ResponseStatus::kDeadlineExceeded);
    EXPECT_NE(responses[0].error.find("deadline"), std::string::npos);
    EXPECT_FALSE(responses[0].partial);
    EXPECT_TRUE(responses[0].result.is_null());
    EXPECT_GE(responses[0].queue_ms, 1.0);
    EXPECT_EQ(svc.stats().deadline_exceeded, 1u);
    svc.shutdown();
}

TEST(Service, PriorityOrdersExecutionFifoWithinClass) {
    const auto inst = uavdc::testing::small_instance(14, 200.0, 83);
    util::ThreadPool pool(1);
    std::promise<void> gate;
    auto blocker =
        pool.submit([f = gate.get_future().share()] { f.wait(); });

    PlanService::Config cfg;
    cfg.defaults = fast_options();
    PlanService svc(cfg, &pool);

    std::mutex mu;
    std::vector<std::string> order;
    const auto record = [&](PlanResponse resp) {
        ASSERT_EQ(resp.status, ResponseStatus::kOk) << resp.error;
        std::lock_guard lock(mu);
        order.push_back(resp.id);
    };

    // All admitted while the worker is parked, so the pops happen strictly
    // by (priority desc, submission order).
    const auto enqueue = [&](const std::string& id, int priority) {
        PlanRequest req = make_request(id, "benchmark", inst);
        req.priority = priority;
        svc.submit(std::move(req), record);
    };
    enqueue("low", 0);
    enqueue("high", 5);
    enqueue("mid", 1);
    enqueue("high-2", 5);

    gate.set_value();
    blocker.get();
    svc.drain();

    std::lock_guard lock(mu);
    ASSERT_EQ(order.size(), 4u);
    EXPECT_EQ(order[0], "high");
    EXPECT_EQ(order[1], "high-2");  // FIFO within the priority class
    EXPECT_EQ(order[2], "mid");
    EXPECT_EQ(order[3], "low");
    svc.shutdown();
}

TEST(Service, BadRequestsAndShutdownAreStructured) {
    const auto inst = uavdc::testing::small_instance(12, 180.0, 84);
    PlanService::Config cfg;
    cfg.workers = 1;
    cfg.defaults = fast_options();
    PlanService svc(cfg);

    const PlanResponse unknown =
        svc.execute(make_request("u", "no-such-planner", inst));
    EXPECT_EQ(unknown.status, ResponseStatus::kBadRequest);
    EXPECT_NE(unknown.error.find("unknown planner"), std::string::npos);

    PlanRequest dangling;
    dangling.id = "d";
    dangling.planner = "alg2";
    dangling.instance_ref = 0x1234;  // never registered
    const PlanResponse ref = svc.execute(dangling);
    EXPECT_EQ(ref.status, ResponseStatus::kBadRequest);
    EXPECT_NE(ref.error.find("instance_ref"), std::string::npos);

    svc.shutdown();
    bool called = false;
    const bool admitted =
        svc.submit(make_request("s", "alg2", inst), [&](PlanResponse resp) {
            called = true;
            EXPECT_EQ(resp.status, ResponseStatus::kShutdown);
            EXPECT_EQ(resp.id, "s");
        });
    EXPECT_FALSE(admitted);
    EXPECT_TRUE(called);

    // Shutdown rejections are first-class in the counters: the per-status
    // counts must reconcile with `completed` (and with `submitted`, since
    // nothing is queued or in flight here).
    const ServiceStats stats = svc.stats();
    EXPECT_EQ(stats.rejected_shutdown, 1u);
    EXPECT_EQ(stats.submitted, stats.completed);
    EXPECT_EQ(stats.completed,
              stats.ok + stats.rejected_overload +
                  stats.rejected_bad_request + stats.rejected_shutdown +
                  stats.deadline_exceeded + stats.internal_errors);
}

TEST(Service, ThrowingCallbackDoesNotWedgeDrain) {
    const auto inst = uavdc::testing::small_instance(10, 160.0, 86);
    PlanService::Config cfg;
    cfg.workers = 2;
    cfg.defaults = fast_options();
    PlanService svc(cfg);

    for (int i = 0; i < 4; ++i) {
        svc.submit(make_request("t" + std::to_string(i), "alg2", inst),
                   [](PlanResponse) {
                       throw std::runtime_error("sink failed");
                   });
    }
    // Regression: a throwing user callback used to skip the in_flight_
    // decrement, wedging drain()/shutdown() (and the destructor) forever.
    svc.drain();
    const ServiceStats stats = svc.stats();
    EXPECT_EQ(stats.completed, 4u);
    EXPECT_EQ(stats.in_flight, 0u);
    EXPECT_EQ(stats.queue_depth, 0u);
    svc.shutdown();
}

TEST(Service, ExternalPoolShutdownAnswersInsteadOfHangingDrain) {
    const auto inst = uavdc::testing::small_instance(10, 160.0, 88);
    util::ThreadPool pool(1);
    pool.shutdown();  // the pool refuses every ticket from now on

    PlanService::Config cfg;
    cfg.defaults = fast_options();
    PlanService svc(cfg, &pool);

    bool called = false;
    const bool admitted =
        svc.submit(make_request("x", "alg2", inst), [&](PlanResponse resp) {
            called = true;
            EXPECT_EQ(resp.id, "x");
            EXPECT_EQ(resp.status, ResponseStatus::kShutdown);
            EXPECT_TRUE(resp.result.is_null());
        });
    // Regression: the request used to stay queued with no ticket and no
    // callback, hanging drain(); now it is un-admitted and answered.
    EXPECT_FALSE(admitted);
    EXPECT_TRUE(called);
    svc.drain();
    const ServiceStats stats = svc.stats();
    EXPECT_EQ(stats.rejected_shutdown, 1u);
    EXPECT_EQ(stats.queue_depth, 0u);
    svc.shutdown();
}

TEST(Service, InlineResubmissionUnderAnotherLabelIsNotACollision) {
    const auto inst = uavdc::testing::small_instance(12, 180.0, 87);
    PlanService::Config cfg;
    cfg.workers = 1;
    cfg.defaults = fast_options();
    PlanService svc(cfg);

    ASSERT_EQ(svc.execute(make_request("a", "alg2", inst)).status,
              ResponseStatus::kOk);

    // Same planning content, different log label: the fingerprint ignores
    // `name`, and the registry's collision cross-check must agree instead
    // of reporting a spurious collision.
    auto renamed = inst;
    renamed.name = "same-content-new-label";
    const PlanResponse resp = svc.execute(make_request("b", "alg2", renamed));
    EXPECT_EQ(resp.status, ResponseStatus::kOk) << resp.error;
    EXPECT_TRUE(resp.cache_hit);
    svc.shutdown();
}

TEST(Service, InlineInstanceRegistersForLaterRefs) {
    const auto inst = uavdc::testing::small_instance(16, 220.0, 85);
    PlanService::Config cfg;
    cfg.workers = 2;
    cfg.defaults = fast_options();
    PlanService svc(cfg);

    const PlanResponse first =
        svc.execute(make_request("inline", "alg2", inst));
    ASSERT_EQ(first.status, ResponseStatus::kOk);

    PlanRequest by_ref;
    by_ref.id = "ref";
    by_ref.planner = "benchmark";
    by_ref.instance_ref =
        core::PlanningContext::instance_fingerprint(inst);
    const PlanResponse second = svc.execute(by_ref);
    ASSERT_EQ(second.status, ResponseStatus::kOk) << second.error;
    EXPECT_EQ(result_key(second.result),
              direct_key(inst, "benchmark", cfg.defaults));
}

TEST(Service, StatsReportLatencyQuantilesPerPlanner) {
    const auto inst = uavdc::testing::small_instance(16, 220.0, 86);
    PlanService::Config cfg;
    cfg.workers = 2;
    cfg.defaults = fast_options();
    PlanService svc(cfg);

    std::mutex mu;
    int ok = 0;
    for (int i = 0; i < 6; ++i) {
        PlanRequest req = make_request("s" + std::to_string(i),
                                       i % 2 ? "alg2" : "benchmark", inst);
        if (i >= 2) req.overrides.delta_m = 20.0 + i;  // defeat the cache
        svc.submit(std::move(req), [&](PlanResponse resp) {
            ASSERT_EQ(resp.status, ResponseStatus::kOk) << resp.error;
            std::lock_guard lock(mu);
            ++ok;
        });
    }
    svc.drain();
    EXPECT_EQ(ok, 6);

    const ServiceStats stats = svc.stats();
    ASSERT_TRUE(stats.latency.count("alg2"));
    ASSERT_TRUE(stats.latency.count("benchmark"));
    for (const auto& [planner, lat] : stats.latency) {
        EXPECT_GT(lat.count, 0u) << planner;
        EXPECT_GE(lat.p50_ms, 0.0) << planner;
        EXPECT_LE(lat.p50_ms, lat.p95_ms) << planner;
        EXPECT_LE(lat.p95_ms, lat.p99_ms) << planner;
        EXPECT_GT(lat.mean_ms, 0.0) << planner;
    }
    EXPECT_EQ(stats.workers, 2u);
}

// ---------------------------------------------------------------------------
// JSONL transport
// ---------------------------------------------------------------------------

std::vector<io::Json> parse_lines(const std::string& text) {
    std::vector<io::Json> docs;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
        if (!line.empty()) docs.push_back(io::Json::parse(line));
    }
    return docs;
}

TEST(ServiceJsonl, GeneratedWorkloadIsDeterministic) {
    WorkloadGenConfig cfg;
    cfg.requests = 24;
    cfg.instances = 3;
    cfg.seed = 5;
    const std::string a = generate_jsonl_workload(cfg);
    const std::string b = generate_jsonl_workload(cfg);
    EXPECT_EQ(a, b);
    cfg.seed = 6;
    EXPECT_NE(a, generate_jsonl_workload(cfg));
}

TEST(ServiceJsonl, EndToEndOneResponsePerLine) {
    WorkloadGenConfig gen;
    gen.requests = 40;
    gen.instances = 3;
    gen.seed = 11;
    gen.deadline_prob = 0.0;  // all-ok run; expiry is covered elsewhere
    const std::string workload = generate_jsonl_workload(gen);

    JsonlConfig cfg;
    cfg.service.workers = 4;
    cfg.service.defaults = fast_options();
    std::istringstream in(workload);
    std::ostringstream out;
    const JsonlSummary summary = serve_jsonl(in, out, cfg);

    EXPECT_EQ(summary.requests, 40u);
    EXPECT_EQ(summary.parse_errors, 0u);
    EXPECT_GT(summary.control, 0u);
    EXPECT_EQ(summary.lines,
              summary.requests + summary.control + summary.parse_errors);

    const auto docs = parse_lines(out.str());
    EXPECT_EQ(docs.size(), summary.lines);
    std::map<std::string, int> ids;
    for (const auto& doc : docs) {
        if (doc.contains("op")) {
            EXPECT_EQ(doc.string_or("status", ""), "ok");
            EXPECT_TRUE(doc.contains("stats"));
            continue;
        }
        ++ids[doc.string_or("id", "")];
        EXPECT_EQ(doc.string_or("status", ""), "ok")
            << doc.string_or("error", "");
    }
    ASSERT_EQ(ids.size(), 40u);
    for (const auto& [id, count] : ids) {
        EXPECT_EQ(count, 1) << id;
    }

    // Byte-identical across sessions: same workload, fresh service.
    std::istringstream in2(workload);
    std::ostringstream out2;
    (void)serve_jsonl(in2, out2, cfg);
    std::map<std::string, std::string> first_keys;
    std::map<std::string, std::string> second_keys;
    for (const auto& doc : docs) {
        if (!doc.contains("op")) {
            first_keys[doc.string_or("id", "")] =
                result_key(doc.at("result"));
        }
    }
    for (const auto& doc : parse_lines(out2.str())) {
        if (!doc.contains("op")) {
            second_keys[doc.string_or("id", "")] =
                result_key(doc.at("result"));
        }
    }
    EXPECT_EQ(first_keys, second_keys);

    // Cache effectiveness is visible in the final stats.
    EXPECT_GT(summary.stats.cache_hits, 0u);
    EXPECT_EQ(summary.stats.ok, 40u);
}

TEST(ServiceJsonl, MalformedLinesGetErrorResponsesNotAborts) {
    const auto inst = uavdc::testing::small_instance(10, 160.0, 21);
    std::ostringstream input;
    input << "this is not json\n";
    input << R"({"op":"frobnicate","id":"c1"})" << "\n";
    input << R"({"id":"m1","planner":"alg2"})" << "\n";  // no instance
    {
        PlanRequest ok_req;
        ok_req.id = "ok1";
        ok_req.planner = "benchmark";
        ok_req.instance = inst;
        input << to_json(ok_req).dump() << "\n";
    }

    JsonlConfig cfg;
    cfg.service.workers = 2;
    cfg.service.defaults = fast_options();
    std::istringstream in(input.str());
    std::ostringstream out;
    const JsonlSummary summary = serve_jsonl(in, out, cfg);

    EXPECT_EQ(summary.lines, 4u);
    EXPECT_EQ(summary.parse_errors, 3u);
    EXPECT_EQ(summary.requests, 1u);

    int bad = 0;
    int ok = 0;
    for (const auto& doc : parse_lines(out.str())) {
        const std::string status = doc.string_or("status", "");
        if (status == "bad_request") {
            ++bad;
            EXPECT_FALSE(doc.string_or("error", "").empty());
        } else if (status == "ok") {
            ++ok;
            EXPECT_EQ(doc.string_or("id", ""), "ok1");
        }
    }
    EXPECT_EQ(bad, 3);
    EXPECT_EQ(ok, 1);
}

TEST(ServiceJsonl, DrainVerbIsABarrier) {
    const auto inst = uavdc::testing::small_instance(14, 200.0, 22);
    PlanRequest req;
    req.id = "before-drain";
    req.planner = "alg2";
    req.instance = inst;

    std::ostringstream input;
    input << to_json(req).dump() << "\n";
    input << R"({"op":"drain","id":"the-drain"})" << "\n";

    JsonlConfig cfg;
    cfg.service.workers = 2;
    cfg.service.defaults = fast_options();
    std::istringstream in(input.str());
    std::ostringstream out;
    (void)serve_jsonl(in, out, cfg);

    const auto docs = parse_lines(out.str());
    ASSERT_EQ(docs.size(), 2u);
    // The drain reply comes after the request it barriers on, and its
    // snapshot already counts that request as completed.
    EXPECT_EQ(docs[0].string_or("id", ""), "before-drain");
    EXPECT_EQ(docs[1].string_or("id", ""), "the-drain");
    EXPECT_EQ(docs[1].at("stats").number_or("completed", -1.0), 1.0);
}

TEST(Service, ResponseLineMatchesJsonDump) {
    // The spliced fast path must stay byte-identical with the tree dump —
    // both transports and the repository reload depend on it.
    const auto inst = uavdc::testing::small_instance(12, 200.0, 23);
    PlanService::Config cfg;
    cfg.workers = 2;
    cfg.defaults = fast_options();
    PlanService svc(cfg);

    PlanRequest req;
    req.id = "line-check \"quoted\"\n";  // exercises escaping in the id
    req.planner = "alg2";
    req.instance = inst;
    for (int pass = 0; pass < 2; ++pass) {  // fresh result, then cache hit
        std::promise<PlanResponse> done;
        svc.submit(req, [&](PlanResponse resp) {
            done.set_value(std::move(resp));
        });
        PlanResponse resp = done.get_future().get();
        ASSERT_EQ(resp.status, ResponseStatus::kOk);
        EXPECT_EQ(resp.cache_hit, pass == 1);
        ASSERT_NE(resp.result_wire, nullptr);
        EXPECT_EQ(response_line(resp), to_json(resp).dump());
        // Timing fields land in the line with full precision.
        resp.queue_ms = 0.1234567890123;
        resp.exec_ms = 3.0;
        EXPECT_EQ(response_line(resp), to_json(resp).dump());
        // Error/partial envelopes splice identically too.
        resp.partial = true;
        resp.error = "late\tplan";
        EXPECT_EQ(response_line(resp), to_json(resp).dump());
    }
    svc.drain();

    // Responses without a pre-serialized result fall back to the dump.
    PlanResponse bad;
    bad.id = "nope";
    bad.status = ResponseStatus::kBadRequest;
    bad.error = "unknown planner";
    EXPECT_EQ(bad.result_wire, nullptr);
    EXPECT_EQ(response_line(bad), to_json(bad).dump());
}

}  // namespace
}  // namespace uavdc::service
