#include <gtest/gtest.h>

#include "uavdc/util/check.hpp"

#include "uavdc/sim/battery.hpp"
#include "uavdc/sim/event.hpp"
#include "uavdc/sim/event_queue.hpp"
#include "uavdc/sim/radio.hpp"

namespace uavdc::sim {
namespace {

TEST(Battery, InitialState) {
    const Battery b(1000.0);
    EXPECT_DOUBLE_EQ(b.capacity_j(), 1000.0);
    EXPECT_DOUBLE_EQ(b.remaining_j(), 1000.0);
    EXPECT_DOUBLE_EQ(b.consumed_j(), 0.0);
    EXPECT_FALSE(b.depleted());
}

TEST(Battery, DrainWithinCapacity) {
    Battery b(1000.0);
    const double t = b.drain(100.0, 5.0);
    EXPECT_DOUBLE_EQ(t, 5.0);
    EXPECT_DOUBLE_EQ(b.remaining_j(), 500.0);
    EXPECT_FALSE(b.depleted());
}

TEST(Battery, DrainTruncatesAtEmpty) {
    Battery b(1000.0);
    const double t = b.drain(100.0, 20.0);  // would need 2000 J
    EXPECT_DOUBLE_EQ(t, 10.0);
    EXPECT_TRUE(b.depleted());
    EXPECT_DOUBLE_EQ(b.remaining_j(), 0.0);
}

TEST(Battery, ZeroPowerLastsForever) {
    Battery b(10.0);
    EXPECT_DOUBLE_EQ(b.drain(0.0, 123.0), 123.0);
    EXPECT_DOUBLE_EQ(b.remaining_j(), 10.0);
    EXPECT_GT(b.time_until_empty(0.0), 1e17);
}

TEST(Battery, TimeUntilEmpty) {
    Battery b(300.0);
    EXPECT_DOUBLE_EQ(b.time_until_empty(150.0), 2.0);
    b.drain(150.0, 1.0);
    EXPECT_DOUBLE_EQ(b.time_until_empty(150.0), 1.0);
}

TEST(Battery, ConsumeClamps) {
    Battery b(100.0);
    EXPECT_DOUBLE_EQ(b.consume(60.0), 60.0);
    EXPECT_DOUBLE_EQ(b.consume(60.0), 40.0);
    EXPECT_TRUE(b.depleted());
    EXPECT_DOUBLE_EQ(b.consume(5.0), 0.0);
}

TEST(Battery, NegativeDurationsIgnored) {
    Battery b(100.0);
    EXPECT_DOUBLE_EQ(b.drain(10.0, -5.0), 0.0);
    EXPECT_DOUBLE_EQ(b.remaining_j(), 100.0);
}

TEST(EventQueue, OrdersByTime) {
    EventQueue q;
    q.push({3.0, EventKind::kArrive, 0, -1, 0.0});
    q.push({1.0, EventKind::kDepart, -1, -1, 0.0});
    q.push({2.0, EventKind::kHoverStart, 0, -1, 0.0});
    EXPECT_EQ(q.pop().kind, EventKind::kDepart);
    EXPECT_EQ(q.pop().kind, EventKind::kHoverStart);
    EXPECT_EQ(q.pop().kind, EventKind::kArrive);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, FifoTieBreaking) {
    EventQueue q;
    q.push({1.0, EventKind::kDeviceDone, 0, 10, 0.0});
    q.push({1.0, EventKind::kDeviceDone, 0, 11, 0.0});
    q.push({1.0, EventKind::kDeviceDone, 0, 12, 0.0});
    EXPECT_EQ(q.pop().device, 10);
    EXPECT_EQ(q.pop().device, 11);
    EXPECT_EQ(q.pop().device, 12);
}

TEST(EventQueue, PeekDoesNotRemove) {
    EventQueue q;
    q.push({5.0, EventKind::kArrive, 1, -1, 0.0});
    EXPECT_EQ(q.peek().stop, 1);
    EXPECT_EQ(q.size(), 1u);
    q.clear();
    EXPECT_TRUE(q.empty());
}

TEST(EventToString, Readable) {
    const Event e{12.5, EventKind::kDeviceDone, 3, 42, 1.5};
    const std::string s = e.to_string();
    EXPECT_NE(s.find("device-done"), std::string::npos);
    EXPECT_NE(s.find("42"), std::string::npos);
    EXPECT_EQ(to_string(EventKind::kTourComplete), "tour-complete");
    EXPECT_EQ(to_string(EventKind::kBatteryDepleted), "battery-depleted");
}

TEST(Radio, ConstantModel) {
    const ConstantRadio r;
    EXPECT_DOUBLE_EQ(r.rate_mbps(0.0, 50.0, 150.0), 150.0);
    EXPECT_DOUBLE_EQ(r.rate_mbps(50.0, 50.0, 150.0), 150.0);
    EXPECT_DOUBLE_EQ(r.rate_mbps(50.001, 50.0, 150.0), 0.0);
    EXPECT_EQ(r.name(), "constant");
}

TEST(Radio, TaperModel) {
    const DistanceTaperRadio r(0.5);
    EXPECT_DOUBLE_EQ(r.rate_mbps(0.0, 50.0, 100.0), 100.0);
    EXPECT_DOUBLE_EQ(r.rate_mbps(50.0, 50.0, 100.0), 50.0);
    EXPECT_DOUBLE_EQ(r.rate_mbps(25.0, 50.0, 100.0), 87.5);
    EXPECT_DOUBLE_EQ(r.rate_mbps(51.0, 50.0, 100.0), 0.0);
    EXPECT_EQ(r.name(), "distance-taper");
}

TEST(Radio, TaperZeroEqualsConstantInside) {
    const DistanceTaperRadio t(0.0);
    const ConstantRadio c;
    for (double d : {0.0, 10.0, 30.0, 50.0}) {
        EXPECT_DOUBLE_EQ(t.rate_mbps(d, 50.0, 150.0),
                         c.rate_mbps(d, 50.0, 150.0));
    }
}

TEST(Radio, TaperValidation) {
    EXPECT_THROW(DistanceTaperRadio(-0.1), util::ContractViolation);
    EXPECT_THROW(DistanceTaperRadio(1.0), util::ContractViolation);
}

TEST(Radio, SharedConstantInstance) {
    EXPECT_DOUBLE_EQ(constant_radio().rate_mbps(10.0, 50.0, 150.0), 150.0);
}

}  // namespace
}  // namespace uavdc::sim
