#include "uavdc/sim/simulator.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"
#include "uavdc/core/algorithm2.hpp"
#include "uavdc/core/evaluate.hpp"

namespace uavdc::sim {
namespace {

using testing::manual_instance;
using testing::small_instance;

TEST(Simulator, EmptyPlanCompletesImmediately) {
    const auto inst = manual_instance({{{50.0, 50.0}, 300.0}});
    const Simulator sim;
    const auto rep = sim.run(inst, {});
    EXPECT_TRUE(rep.completed);
    EXPECT_FALSE(rep.battery_depleted);
    EXPECT_DOUBLE_EQ(rep.collected_mb, 0.0);
    EXPECT_DOUBLE_EQ(rep.duration_s, 0.0);
}

TEST(Simulator, SingleStopFullCollection) {
    const auto inst = manual_instance({{{30.0, 40.0}, 300.0}});
    model::FlightPlan plan;
    plan.stops.push_back({{30.0, 40.0}, 2.0, -1});
    const auto rep = Simulator().run(inst, plan);
    EXPECT_TRUE(rep.completed);
    EXPECT_DOUBLE_EQ(rep.collected_mb, 300.0);
    EXPECT_EQ(rep.devices_drained, 1);
    EXPECT_DOUBLE_EQ(rep.travel_s, 10.0);   // 100 m round trip at 10 m/s
    EXPECT_DOUBLE_EQ(rep.hover_s, 2.0);
    EXPECT_DOUBLE_EQ(rep.duration_s, 12.0);
    // Travel: 100 m * 100 J/m; hover: 2 s * 150 W.
    EXPECT_DOUBLE_EQ(rep.energy_used_j, 100.0 * 100.0 + 2.0 * 150.0);
}

TEST(Simulator, TraceEventsInOrder) {
    const auto inst = manual_instance({{{30.0, 40.0}, 300.0}});
    model::FlightPlan plan;
    plan.stops.push_back({{30.0, 40.0}, 2.0, -1});
    const auto rep = Simulator().run(inst, plan);
    ASSERT_GE(rep.trace.size(), 5u);
    EXPECT_EQ(rep.trace.front().kind, EventKind::kDepart);
    EXPECT_EQ(rep.trace.back().kind, EventKind::kTourComplete);
    for (std::size_t i = 1; i < rep.trace.size(); ++i) {
        EXPECT_GE(rep.trace[i].time_s, rep.trace[i - 1].time_s - 1e-12);
    }
    bool saw_device_done = false;
    for (const auto& e : rep.trace) {
        if (e.kind == EventKind::kDeviceDone) {
            saw_device_done = true;
            EXPECT_EQ(e.device, 0);
        }
    }
    EXPECT_TRUE(saw_device_done);
}

TEST(Simulator, TraceDisabled) {
    const auto inst = manual_instance({{{30.0, 40.0}, 300.0}});
    model::FlightPlan plan;
    plan.stops.push_back({{30.0, 40.0}, 2.0, -1});
    SimConfig cfg;
    cfg.record_trace = false;
    const auto rep = Simulator(cfg).run(inst, plan);
    EXPECT_TRUE(rep.trace.empty());
    EXPECT_DOUBLE_EQ(rep.collected_mb, 300.0);
}

TEST(Simulator, BatteryDiesMidFlight) {
    auto inst = manual_instance({{{150.0, 0.0}, 300.0}}, 200.0);
    inst.uav.energy_j = 500.0;  // 5 m of flight; target is 150 m away
    model::FlightPlan plan;
    plan.stops.push_back({{150.0, 0.0}, 2.0, -1});
    const auto rep = Simulator().run(inst, plan);
    EXPECT_FALSE(rep.completed);
    EXPECT_TRUE(rep.battery_depleted);
    EXPECT_DOUBLE_EQ(rep.collected_mb, 0.0);
    EXPECT_DOUBLE_EQ(rep.energy_used_j, 500.0);
    EXPECT_EQ(rep.stops_visited, 0);
}

TEST(Simulator, BatteryDiesMidHover) {
    auto inst = manual_instance({{{10.0, 0.0}, 1500.0}}, 200.0);
    // Flight out: 10 m = 1000 J. Hover needs 10 s = 1500 J; give ~half.
    inst.uav.energy_j = 1000.0 + 750.0;
    model::FlightPlan plan;
    plan.stops.push_back({{10.0, 0.0}, 10.0, -1});
    const auto rep = Simulator().run(inst, plan);
    EXPECT_FALSE(rep.completed);
    EXPECT_TRUE(rep.battery_depleted);
    EXPECT_NEAR(rep.hover_s, 5.0, 1e-9);
    EXPECT_NEAR(rep.collected_mb, 5.0 * 150.0, 1e-9);
}

TEST(Simulator, ConcurrentUploadsFinishIndependently) {
    const auto inst = manual_instance(
        {{{45.0, 50.0}, 150.0}, {{55.0, 50.0}, 450.0}});
    model::FlightPlan plan;
    plan.stops.push_back({{50.0, 50.0}, 3.0, -1});
    const auto rep = Simulator().run(inst, plan);
    EXPECT_DOUBLE_EQ(rep.per_device_mb[0], 150.0);  // done after 1 s
    EXPECT_DOUBLE_EQ(rep.per_device_mb[1], 450.0);  // done after 3 s
    EXPECT_EQ(rep.devices_drained, 2);
    int done_events = 0;
    for (const auto& e : rep.trace) {
        if (e.kind == EventKind::kDeviceDone) ++done_events;
    }
    EXPECT_EQ(done_events, 2);
}

TEST(Simulator, ResidualSpansMultipleStops) {
    const auto inst = manual_instance({{{50.0, 50.0}, 300.0}});
    model::FlightPlan plan;
    plan.stops.push_back({{30.0, 50.0}, 1.0, -1});
    plan.stops.push_back({{70.0, 50.0}, 1.0, -1});
    const auto rep = Simulator().run(inst, plan);
    EXPECT_DOUBLE_EQ(rep.collected_mb, 300.0);
    EXPECT_EQ(rep.devices_drained, 1);
}

TEST(Simulator, TaperRadioCollectsLess) {
    const auto inst = manual_instance({{{90.0, 50.0}, 600.0}});
    model::FlightPlan plan;
    plan.stops.push_back({{50.0, 50.0}, 2.0, -1});  // device 40 m out
    const DistanceTaperRadio taper(0.5);
    SimConfig cfg;
    cfg.radio = &taper;
    const auto with_taper = Simulator(cfg).run(inst, plan);
    const auto without = Simulator().run(inst, plan);
    EXPECT_LT(with_taper.collected_mb, without.collected_mb);
    // rate = 150 * (1 - 0.5 * (40/50)^2) = 102 MB/s for 2 s.
    EXPECT_NEAR(with_taper.collected_mb, 204.0, 1e-9);
}

TEST(Simulator, MatchesClosedFormEvaluation) {
    // The headline cross-check: event-driven execution == closed form for
    // feasible plans produced by a real planner.
    for (std::uint64_t seed : {41u, 42u, 43u, 44u}) {
        const auto inst = small_instance(35, 320.0, seed);
        core::Algorithm2Config cfg;
        cfg.candidates.delta_m = 20.0;
        const auto res = core::GreedyCoveragePlanner(cfg).plan(inst);
        const auto ev = core::evaluate_plan(inst, res.plan);
        SimConfig scfg;
        scfg.record_trace = false;
        const auto rep = Simulator(scfg).run(inst, res.plan);
        EXPECT_TRUE(rep.completed) << "seed " << seed;
        EXPECT_FALSE(rep.battery_depleted) << "seed " << seed;
        EXPECT_NEAR(rep.collected_mb, ev.collected_mb, 1e-6)
            << "seed " << seed;
        EXPECT_NEAR(rep.energy_used_j, ev.energy_j, 1e-6) << "seed " << seed;
        EXPECT_NEAR(rep.duration_s, ev.tour_time_s, 1e-6) << "seed " << seed;
        for (std::size_t d = 0; d < rep.per_device_mb.size(); ++d) {
            EXPECT_NEAR(rep.per_device_mb[d], ev.per_device_mb[d], 1e-6);
        }
    }
}

TEST(Simulator, EnergyNeverExceedsCapacity) {
    for (std::uint64_t seed : {45u, 46u}) {
        auto inst = small_instance(25, 300.0, seed);
        inst.uav.energy_j = 2.0e4;
        core::Algorithm2Config cfg;
        cfg.candidates.delta_m = 25.0;
        const auto res = core::GreedyCoveragePlanner(cfg).plan(inst);
        const auto rep = Simulator().run(inst, res.plan);
        EXPECT_LE(rep.energy_used_j, inst.uav.energy_j + 1e-6);
    }
}

}  // namespace
}  // namespace uavdc::sim
