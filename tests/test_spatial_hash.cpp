#include "uavdc/geom/spatial_hash.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "uavdc/util/rng.hpp"

namespace uavdc::geom {
namespace {

std::vector<Vec2> random_points(int n, double side, std::uint64_t seed) {
    util::Rng rng(seed);
    std::vector<Vec2> pts;
    pts.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        pts.push_back({rng.uniform(0.0, side), rng.uniform(0.0, side)});
    }
    return pts;
}

std::vector<int> brute_force_disk(const std::vector<Vec2>& pts, const Vec2& q,
                                  double r) {
    std::vector<int> out;
    for (std::size_t i = 0; i < pts.size(); ++i) {
        if (distance(pts[i], q) <= r) out.push_back(static_cast<int>(i));
    }
    return out;
}

TEST(SpatialHash, EmptyIndex) {
    const SpatialHash h(std::vector<Vec2>{}, 10.0);
    EXPECT_EQ(h.size(), 0u);
    EXPECT_TRUE(h.query_disk({0.0, 0.0}, 100.0).empty());
    EXPECT_EQ(h.nearest({0.0, 0.0}), -1);
}

TEST(SpatialHash, RejectsBadCellSize) {
    const std::vector<Vec2> pts{{0.0, 0.0}};
    EXPECT_THROW(SpatialHash(pts, 0.0), std::invalid_argument);
    EXPECT_THROW(SpatialHash(pts, -3.0), std::invalid_argument);
}

TEST(SpatialHash, SinglePoint) {
    const std::vector<Vec2> pts{{5.0, 5.0}};
    const SpatialHash h(pts, 1.0);
    EXPECT_EQ(h.query_disk({5.0, 5.0}, 0.0), std::vector<int>{0});
    EXPECT_TRUE(h.query_disk({7.0, 5.0}, 1.0).empty());
    EXPECT_EQ(h.nearest({100.0, 100.0}), 0);
}

TEST(SpatialHash, DiskQueryMatchesBruteForce) {
    const auto pts = random_points(400, 1000.0, 42);
    const SpatialHash h(pts, 50.0);
    util::Rng rng(99);
    for (int trial = 0; trial < 50; ++trial) {
        const Vec2 q{rng.uniform(-100.0, 1100.0),
                     rng.uniform(-100.0, 1100.0)};
        const double r = rng.uniform(0.0, 200.0);
        EXPECT_EQ(h.query_disk(q, r), brute_force_disk(pts, q, r))
            << "trial " << trial;
    }
}

TEST(SpatialHash, DiskQuerySortedAscending) {
    const auto pts = random_points(200, 500.0, 3);
    const SpatialHash h(pts, 40.0);
    const auto res = h.query_disk({250.0, 250.0}, 120.0);
    EXPECT_TRUE(std::is_sorted(res.begin(), res.end()));
}

TEST(SpatialHash, NegativeRadiusIsEmpty) {
    const auto pts = random_points(10, 100.0, 5);
    const SpatialHash h(pts, 10.0);
    EXPECT_TRUE(h.query_disk({50.0, 50.0}, -1.0).empty());
}

TEST(SpatialHash, NearestMatchesBruteForce) {
    const auto pts = random_points(300, 800.0, 11);
    const SpatialHash h(pts, 60.0);
    util::Rng rng(123);
    for (int trial = 0; trial < 40; ++trial) {
        const Vec2 q{rng.uniform(-200.0, 1000.0),
                     rng.uniform(-200.0, 1000.0)};
        const int got = h.nearest(q);
        ASSERT_GE(got, 0);
        double best = 1e18;
        int want = -1;
        for (std::size_t i = 0; i < pts.size(); ++i) {
            const double d = distance(pts[i], q);
            if (d < best) {
                best = d;
                want = static_cast<int>(i);
            }
        }
        EXPECT_DOUBLE_EQ(distance(pts[static_cast<std::size_t>(got)], q),
                         distance(pts[static_cast<std::size_t>(want)], q))
            << "trial " << trial;
    }
}

TEST(SpatialHash, ForEachVisitsEachMatchOnce) {
    const auto pts = random_points(150, 300.0, 77);
    const SpatialHash h(pts, 30.0);
    std::vector<int> counts(pts.size(), 0);
    h.for_each_in_disk({150.0, 150.0}, 90.0, [&](int i) {
        ++counts[static_cast<std::size_t>(i)];
    });
    const auto expect = brute_force_disk(pts, {150.0, 150.0}, 90.0);
    for (std::size_t i = 0; i < pts.size(); ++i) {
        const bool inside =
            std::find(expect.begin(), expect.end(), static_cast<int>(i)) !=
            expect.end();
        EXPECT_EQ(counts[i], inside ? 1 : 0);
    }
}

TEST(SpatialHash, CoincidentPoints) {
    const std::vector<Vec2> pts{{1.0, 1.0}, {1.0, 1.0}, {1.0, 1.0}};
    const SpatialHash h(pts, 5.0);
    EXPECT_EQ(h.query_disk({1.0, 1.0}, 0.0).size(), 3u);
}

std::vector<int> brute_force_k_nearest(const std::vector<Vec2>& pts,
                                       const Vec2& q, std::size_t k) {
    std::vector<int> idx(pts.size());
    for (std::size_t i = 0; i < pts.size(); ++i) idx[i] = static_cast<int>(i);
    std::sort(idx.begin(), idx.end(), [&](int a, int b) {
        const double da = distance2(pts[static_cast<std::size_t>(a)], q);
        const double db = distance2(pts[static_cast<std::size_t>(b)], q);
        if (da != db) return da < db;
        return a < b;
    });
    if (idx.size() > k) idx.resize(k);
    return idx;
}

TEST(SpatialHash, KNearestMatchesBruteForce) {
    const auto pts = random_points(300, 800.0, 21);
    const SpatialHash h(pts, 60.0);
    util::Rng rng(456);
    for (int trial = 0; trial < 40; ++trial) {
        const Vec2 q{rng.uniform(-200.0, 1000.0),
                     rng.uniform(-200.0, 1000.0)};
        const auto k = static_cast<std::size_t>(rng.uniform_int(1, 20));
        EXPECT_EQ(h.k_nearest(q, k), brute_force_k_nearest(pts, q, k))
            << "trial " << trial << " k=" << k;
    }
}

TEST(SpatialHash, KNearestDeterministicUnderTies) {
    // Four points equidistant from the query: (distance, index) order means
    // ascending index wins.
    const std::vector<Vec2> pts{
        {10.0, 0.0}, {0.0, 10.0}, {-10.0, 0.0}, {0.0, -10.0}, {50.0, 50.0}};
    const SpatialHash h(pts, 7.0);
    EXPECT_EQ(h.k_nearest({0.0, 0.0}, 2), (std::vector<int>{0, 1}));
    EXPECT_EQ(h.k_nearest({0.0, 0.0}, 4), (std::vector<int>{0, 1, 2, 3}));
}

TEST(SpatialHash, KNearestEdgeCases) {
    const auto pts = random_points(25, 100.0, 8);
    const SpatialHash h(pts, 10.0);
    EXPECT_TRUE(h.k_nearest({50.0, 50.0}, 0).empty());
    // k larger than the point count returns everything, fully sorted.
    EXPECT_EQ(h.k_nearest({50.0, 50.0}, 100),
              brute_force_k_nearest(pts, {50.0, 50.0}, 100));
    const SpatialHash empty(std::vector<Vec2>{}, 10.0);
    EXPECT_TRUE(empty.k_nearest({0.0, 0.0}, 3).empty());
}

}  // namespace
}  // namespace uavdc::geom
