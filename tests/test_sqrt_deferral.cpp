// Squared-distance deferral equivalence suite. The planner hot paths run a
// bound-then-verify scan: squared-distance lower bounds prune, and only the
// surviving edges pay the exact sqrt forms. These tests pin the contract
// that the pruning is invisible — a 100-seed bitwise fuzz of pruned
// (incremental) vs reference plans across alg2/alg3/benchmark and every
// retour cadence, plus direct boundary tests at the shapes the slacked
// bound has to get exactly right: equal-delta ties, zero thresholds,
// degenerate zero-length edges from duplicate stops, and points at the
// exact coverage radius.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "uavdc/core/algorithm2.hpp"
#include "uavdc/core/algorithm3.hpp"
#include "uavdc/core/benchmark_planner.hpp"
#include "uavdc/core/planning_context.hpp"
#include "uavdc/core/tour_builder.hpp"
#include "uavdc/geom/spatial_hash.hpp"
#include "uavdc/util/rng.hpp"
#include "uavdc/workload/generator.hpp"

namespace uavdc {
namespace {

using core::Algorithm2Config;
using core::Algorithm3Config;
using core::BenchmarkPlannerConfig;
using core::GreedyCoveragePlanner;
using core::PartialCollectionPlanner;
using core::PlanningContext;
using core::PlanResult;
using core::PruneTspPlanner;
using core::ScoringEngine;
using core::TourBuilder;

// Exact (bitwise) plan comparison — no tolerances anywhere.
void expect_identical(const PlanResult& a, const PlanResult& b,
                      const std::string& what) {
    SCOPED_TRACE(what);
    ASSERT_EQ(a.plan.stops.size(), b.plan.stops.size());
    for (std::size_t i = 0; i < a.plan.stops.size(); ++i) {
        EXPECT_EQ(a.plan.stops[i].pos.x, b.plan.stops[i].pos.x) << "stop " << i;
        EXPECT_EQ(a.plan.stops[i].pos.y, b.plan.stops[i].pos.y) << "stop " << i;
        EXPECT_EQ(a.plan.stops[i].dwell_s, b.plan.stops[i].dwell_s)
            << "stop " << i;
        EXPECT_EQ(a.plan.stops[i].cell_id, b.plan.stops[i].cell_id)
            << "stop " << i;
    }
    EXPECT_EQ(a.stats.planned_mb, b.stats.planned_mb);
    EXPECT_EQ(a.stats.planned_energy_j, b.stats.planned_energy_j);
    EXPECT_EQ(a.stats.iterations, b.stats.iterations);
}

model::Instance fuzz_instance(util::Rng& rng) {
    constexpr workload::Deployment kDeployments[] = {
        workload::Deployment::kUniform, workload::Deployment::kClustered,
        workload::Deployment::kGridJitter, workload::Deployment::kRing};
    workload::GeneratorConfig g;
    g.num_devices = static_cast<int>(rng.uniform_int(5, 32));
    g.region_w = rng.uniform(150.0, 450.0);
    g.region_h = rng.uniform(150.0, 450.0);
    g.deployment =
        kDeployments[static_cast<std::size_t>(rng.uniform_int(0, 3))];
    g.min_mb = rng.uniform(20.0, 120.0);
    g.max_mb = g.min_mb + rng.uniform(50.0, 600.0);
    g.uav.energy_j = rng.uniform(2.0e4, 1.0e5);
    return workload::generate(g, rng.next_u64());
}

core::HoverCandidateConfig hover_cfg(const model::Instance& inst) {
    core::HoverCandidateConfig c;
    c.delta_m = std::max(
        10.0, std::max(inst.region.width(), inst.region.height()) / 12.0);
    return c;
}

// ---------------------------------------------------------------------------
// 100-seed planner fuzz: pruned (incremental) plans are bit-identical to the
// reference engine across alg2 / alg3 / benchmark and retour {0, 1, 3, 8}.
// ---------------------------------------------------------------------------

TEST(SqrtDeferralFuzz, HundredSeedsPrunedMatchesReference) {
    constexpr int kRetours[] = {0, 1, 3, 8};
    for (std::uint64_t seed = 1; seed <= 100; ++seed) {
        util::Rng rng(seed * 7919 + 13);
        const auto inst = fuzz_instance(rng);
        const auto ctx = PlanningContext::build(inst, hover_cfg(inst));
        const int retour = kRetours[seed % 4];
        PlanResult by_engine[2];
        std::string algo;
        for (int e = 0; e < 2; ++e) {
            const auto engine = e == 0 ? ScoringEngine::kReference
                                       : ScoringEngine::kIncremental;
            switch (seed % 3) {
                case 0: {
                    Algorithm2Config cfg;
                    cfg.candidates = hover_cfg(inst);
                    cfg.retour_every = retour;
                    cfg.scoring = engine;
                    by_engine[e] = GreedyCoveragePlanner(cfg).plan(*ctx);
                    algo = "alg2";
                    break;
                }
                case 1: {
                    Algorithm3Config cfg;
                    cfg.candidates = hover_cfg(inst);
                    cfg.k = 1 + static_cast<int>(seed % 4);
                    cfg.retour_every = retour;
                    cfg.scoring = engine;
                    by_engine[e] = PartialCollectionPlanner(cfg).plan(*ctx);
                    algo = "alg3";
                    break;
                }
                default: {
                    BenchmarkPlannerConfig cfg;
                    cfg.scoring = engine;
                    by_engine[e] = PruneTspPlanner(cfg).plan(*ctx);
                    algo = "benchmark";
                    break;
                }
            }
        }
        expect_identical(by_engine[0], by_engine[1],
                         algo + " seed " + std::to_string(seed) + " retour " +
                             std::to_string(retour));
        if (::testing::Test::HasFailure()) break;
    }
}

// ---------------------------------------------------------------------------
// TourBuilder boundary shapes: the pruned scan must agree with a brute-force
// exact oracle at ties, zero thresholds, and zero-length edges.
// ---------------------------------------------------------------------------

/// Brute-force exact cheapest insertion from the oracle forms only —
/// geom::distance per edge endpoint, fresh edge_lengths(), strict-< argmin
/// (equal deltas keep the smaller position).
TourBuilder::Insertion oracle_cheapest(const TourBuilder& t,
                                       const geom::Vec2& p) {
    const auto& stops = t.stops();
    const auto len = t.edge_lengths();
    TourBuilder::Insertion best{0, 0.0};
    if (stops.empty()) {
        best.delta_m =
            geom::distance(t.depot(), p) + geom::distance(p, t.depot());
        return best;
    }
    bool first = true;
    for (std::size_t e = 0; e <= stops.size(); ++e) {
        const geom::Vec2& a = e == 0 ? t.depot() : stops[e - 1];
        const geom::Vec2& b = e == stops.size() ? t.depot() : stops[e];
        const double delta =
            geom::distance(a, p) + geom::distance(p, b) - len[e];
        if (first || delta < best.delta_m) {
            best = {e, delta};
            first = false;
        }
    }
    return best;
}

TEST(SqrtDeferralBoundary, ExactTiesResolveToSmallerPosition) {
    // Square tour around the depot: symmetric probes tie on multiple edges.
    TourBuilder t({0.0, 0.0});
    t.insert({100.0, 0.0}, 0, t.cheapest_insertion({100.0, 0.0}));
    t.insert({100.0, 100.0}, 1, t.cheapest_insertion({100.0, 100.0}));
    t.insert({0.0, 100.0}, 2, t.cheapest_insertion({0.0, 100.0}));
    const geom::Vec2 probes[] = {
        {50.0, 50.0},    // centre: every edge ties by symmetry
        {50.0, 0.0},     // on edge 0: delta exactly 0 there
        {100.0, 50.0},   // on edge 1
        {0.0, 50.0},     // on the closing edge
        {50.0, 100.0},   // on edge 2
    };
    for (const auto& p : probes) {
        const auto got = t.cheapest_insertion(p);
        const auto want = oracle_cheapest(t, p);
        EXPECT_EQ(got.position, want.position) << "probe " << p.x << "," << p.y;
        EXPECT_EQ(got.delta_m, want.delta_m) << "probe " << p.x << "," << p.y;
    }
    // On-edge probes have delta exactly 0 — the zero-threshold case where
    // the squared bound must not prune the tying edges away.
    EXPECT_EQ(t.cheapest_insertion({50.0, 0.0}).delta_m, 0.0);
    // The runner-up scan prunes against `second`, never against `best`;
    // with a tie it must surface the other zero-delta edge, not skip it.
    const auto two = t.cheapest_insertion2({50.0, 50.0});
    ASSERT_TRUE(two.has_second);
    EXPECT_EQ(two.best.delta_m, two.second.delta_m);
    EXPECT_LT(two.best.position, two.second.position);
}

TEST(SqrtDeferralBoundary, ZeroLengthEdgesFromDuplicateStops) {
    TourBuilder t({0.0, 0.0});
    const geom::Vec2 dup{30.0, 40.0};
    t.insert(dup, 0, t.cheapest_insertion(dup));
    // Re-inserting the identical point creates a zero-length edge; its
    // cheapest insertion delta is exactly 0 on both adjacent edges.
    const auto again = t.cheapest_insertion(dup);
    EXPECT_EQ(again.delta_m, 0.0);
    t.insert(dup, 1, again);
    ASSERT_EQ(t.size(), 2u);
    // The maintained mirrors agree with their oracles bit-for-bit even with
    // the degenerate edge present.
    const auto len = t.edge_lengths();
    const auto len2 = t.edge_lengths2();
    for (std::size_t e = 0; e < len.size(); ++e) {
        EXPECT_EQ(t.edge_len()[e], len[e]) << "edge " << e;
        EXPECT_EQ(t.edge_len2()[e], len2[e]) << "edge " << e;
    }
    // Probing the duplicate point again: every adjacent delta is 0 and the
    // prune threshold is 0 — the thr > 0 guard must disable pruning so the
    // scan still resolves the tie exactly like the oracle.
    const auto got = t.cheapest_insertion(dup);
    const auto want = oracle_cheapest(t, dup);
    EXPECT_EQ(got.position, want.position);
    EXPECT_EQ(got.delta_m, want.delta_m);
    EXPECT_EQ(got.delta_m, 0.0);
    // A probe at the depot itself: d_depot is 0, edge deltas collapse to
    // 2 * d(stop, p) - len terms; still oracle-identical.
    const auto at_depot = t.cheapest_insertion({0.0, 0.0});
    const auto at_depot_want = oracle_cheapest(t, {0.0, 0.0});
    EXPECT_EQ(at_depot.position, at_depot_want.position);
    EXPECT_EQ(at_depot.delta_m, at_depot_want.delta_m);
    // Removing one duplicate shortcuts a zero-length edge plus the closing
    // leg into one identical closing leg — delta exactly 0 (the
    // removal_delta DCHECK cross-checks edge_len_ against a fresh
    // recomputation in debug builds).
    EXPECT_EQ(t.removal_delta(1), 0.0);
    t.remove(1);
    EXPECT_EQ(t.size(), 1u);
    EXPECT_EQ(t.edge_len()[0], t.edge_lengths()[0]);
    EXPECT_EQ(t.edge_len2()[0], t.edge_lengths2()[0]);
}

TEST(SqrtDeferralBoundary, RandomScansMatchOracleBitwise) {
    // Random tours + random probes: the pruned scan must reproduce the
    // oracle argmin and delta bit-for-bit, including re-probing existing
    // stops (zero-length candidates) every few steps.
    util::Rng rng(4242);
    for (int trial = 0; trial < 20; ++trial) {
        TourBuilder t({rng.uniform(0.0, 50.0), rng.uniform(0.0, 50.0)});
        std::vector<geom::Vec2> placed;
        for (int i = 0; i < 40; ++i) {
            geom::Vec2 p{rng.uniform(0.0, 400.0), rng.uniform(0.0, 400.0)};
            if (!placed.empty() && i % 7 == 0) {
                p = placed[static_cast<std::size_t>(rng.uniform_int(
                    0, static_cast<std::int64_t>(placed.size()) - 1))];
            }
            const auto got = t.cheapest_insertion(p);
            const auto want = oracle_cheapest(t, p);
            ASSERT_EQ(got.position, want.position)
                << "trial " << trial << " step " << i;
            ASSERT_EQ(got.delta_m, want.delta_m)
                << "trial " << trial << " step " << i;
            t.insert(p, i, got);
            placed.push_back(p);
        }
    }
}

// ---------------------------------------------------------------------------
// Exact coverage radius: squared-space disk tests stay inclusive at d == r.
// ---------------------------------------------------------------------------

TEST(SqrtDeferralBoundary, DiskQueryIncludesPointAtExactRadius) {
    // (3, 4, 5) triple: the squared compare d2 <= r*r sees exactly 25 <= 25.
    const std::vector<geom::Vec2> pts = {
        {3.0, 4.0}, {5.0, 0.0}, {0.0, -5.0}, {3.1, 4.1}};
    const geom::SpatialHash hash(pts, 2.5);
    std::vector<std::size_t> hit;
    hash.for_each_in_disk({0.0, 0.0}, 5.0,
                          [&](std::size_t i) { hit.push_back(i); });
    std::sort(hit.begin(), hit.end());
    // The three points at exactly r = 5 are included; (3.1, 4.1) is not.
    EXPECT_EQ(hit, (std::vector<std::size_t>{0, 1, 2}));
}

}  // namespace
}  // namespace uavdc
