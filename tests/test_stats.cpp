#include "uavdc/util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace uavdc::util {
namespace {

TEST(Accumulator, EmptyIsZero) {
    const Accumulator a;
    EXPECT_EQ(a.count(), 0u);
    EXPECT_EQ(a.mean(), 0.0);
    EXPECT_EQ(a.variance(), 0.0);
    EXPECT_EQ(a.stddev(), 0.0);
    EXPECT_EQ(a.sum(), 0.0);
}

TEST(Accumulator, SingleValue) {
    Accumulator a;
    a.add(5.0);
    EXPECT_EQ(a.count(), 1u);
    EXPECT_DOUBLE_EQ(a.mean(), 5.0);
    EXPECT_EQ(a.variance(), 0.0);
    EXPECT_DOUBLE_EQ(a.min(), 5.0);
    EXPECT_DOUBLE_EQ(a.max(), 5.0);
}

TEST(Accumulator, KnownSample) {
    Accumulator a;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) a.add(x);
    EXPECT_DOUBLE_EQ(a.mean(), 5.0);
    EXPECT_NEAR(a.variance(), 32.0 / 7.0, 1e-12);  // sample variance
    EXPECT_DOUBLE_EQ(a.min(), 2.0);
    EXPECT_DOUBLE_EQ(a.max(), 9.0);
    EXPECT_DOUBLE_EQ(a.sum(), 40.0);
}

TEST(Accumulator, MergeMatchesSequential) {
    Accumulator whole, left, right;
    const std::vector<double> xs{1.5, -2.0, 3.25, 8.0, 0.0, -1.0, 4.5};
    for (std::size_t i = 0; i < xs.size(); ++i) {
        whole.add(xs[i]);
        (i < 3 ? left : right).add(xs[i]);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), whole.count());
    EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
    EXPECT_NEAR(left.variance(), whole.variance(), 1e-12);
    EXPECT_DOUBLE_EQ(left.min(), whole.min());
    EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(Accumulator, MergeWithEmpty) {
    Accumulator a, empty;
    a.add(1.0);
    a.add(3.0);
    const double m = a.mean();
    a.merge(empty);
    EXPECT_DOUBLE_EQ(a.mean(), m);
    empty.merge(a);
    EXPECT_DOUBLE_EQ(empty.mean(), m);
}

TEST(Accumulator, Ci95ShrinksWithSamples) {
    Accumulator small, big;
    for (int i = 0; i < 10; ++i) small.add(i % 2 ? 1.0 : -1.0);
    for (int i = 0; i < 1000; ++i) big.add(i % 2 ? 1.0 : -1.0);
    EXPECT_GT(small.ci95_halfwidth(), big.ci95_halfwidth());
}

TEST(StatsFree, MeanAndStddev) {
    const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
    EXPECT_DOUBLE_EQ(mean(xs), 5.0);
    EXPECT_NEAR(stddev(xs), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(StatsFree, EmptyAndSingleton) {
    EXPECT_EQ(mean(std::vector<double>{}), 0.0);
    EXPECT_EQ(stddev(std::vector<double>{}), 0.0);
    EXPECT_EQ(stddev(std::vector<double>{4.0}), 0.0);
}

TEST(StatsFree, MedianOddEven) {
    EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
    EXPECT_DOUBLE_EQ(median({4.0, 1.0, 2.0, 3.0}), 2.5);
    EXPECT_EQ(median({}), 0.0);
}

TEST(StatsFree, Quantiles) {
    const std::vector<double> xs{0.0, 1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 4.0);
    EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.0);
    EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 1.0);
    EXPECT_DOUBLE_EQ(quantile(xs, 0.125), 0.5);  // interpolated
}

}  // namespace
}  // namespace uavdc::util
