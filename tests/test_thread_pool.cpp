#include "uavdc/util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "uavdc/util/parallel_for.hpp"

namespace uavdc::util {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
    ThreadPool pool(4);
    EXPECT_EQ(pool.num_threads(), 4u);
    auto f = pool.submit([] { return 21 * 2; });
    EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, ManyTasksAllComplete) {
    ThreadPool pool(4);
    std::atomic<int> counter{0};
    std::vector<std::future<void>> futs;
    for (int i = 0; i < 500; ++i) {
        futs.push_back(pool.submit([&counter] { ++counter; }));
    }
    for (auto& f : futs) f.get();
    EXPECT_EQ(counter.load(), 500);
}

TEST(ThreadPool, PropagatesExceptions) {
    ThreadPool pool(2);
    auto f = pool.submit([]() -> int {
        throw std::runtime_error("boom");
    });
    EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, WaitIdleBlocksUntilDrained) {
    ThreadPool pool(2);
    std::atomic<int> done{0};
    for (int i = 0; i < 64; ++i) {
        (void)pool.submit([&done] { ++done; });
    }
    pool.wait_idle();
    EXPECT_EQ(done.load(), 64);
}

TEST(ThreadPool, DefaultThreadCountPositive) {
    ThreadPool pool;
    EXPECT_GE(pool.num_threads(), 1u);
}

TEST(ParallelFor, CoversExactRange) {
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(1000);
    parallel_for(pool, 0, hits.size(), [&](std::size_t i) { ++hits[i]; });
    for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyRangeNoop) {
    ThreadPool pool(2);
    int calls = 0;
    parallel_for(pool, 5, 5, [&](std::size_t) { ++calls; });
    parallel_for(pool, 7, 3, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls, 0);
}

TEST(ParallelFor, SmallRangeRunsInline) {
    ThreadPool pool(4);
    std::vector<int> out(3, 0);
    parallel_for(pool, 0, 3, [&](std::size_t i) { out[i] = 1; }, 100);
    EXPECT_EQ(std::accumulate(out.begin(), out.end(), 0), 3);
}

TEST(ParallelFor, RethrowsWorkerException) {
    ThreadPool pool(4);
    EXPECT_THROW(
        parallel_for(pool, 0, 100,
                     [](std::size_t i) {
                         if (i == 57) throw std::logic_error("bad index");
                     }),
        std::logic_error);
}

TEST(ParallelFor, SumMatchesSerial) {
    ThreadPool pool(8);
    const std::size_t n = 10000;
    std::vector<double> vals(n);
    parallel_for(pool, 0, n, [&](std::size_t i) {
        vals[i] = static_cast<double>(i) * 0.5;
    });
    double s = 0.0;
    for (double v : vals) s += v;
    EXPECT_DOUBLE_EQ(s, 0.5 * static_cast<double>(n) *
                            static_cast<double>(n - 1) / 2.0);
}

TEST(ParallelMap, ProducesOrderedResults) {
    ThreadPool pool(4);
    const auto out = parallel_map<int>(pool, 100, [](std::size_t i) {
        return static_cast<int>(i * i);
    });
    ASSERT_EQ(out.size(), 100u);
    for (std::size_t i = 0; i < out.size(); ++i) {
        EXPECT_EQ(out[i], static_cast<int>(i * i));
    }
}

TEST(GlobalPool, IsUsable) {
    auto f = global_pool().submit([] { return 1; });
    EXPECT_EQ(f.get(), 1);
}

TEST(ThreadPool, ShutdownDrainsThenJoins) {
    ThreadPool pool(3);
    std::atomic<int> done{0};
    for (int i = 0; i < 128; ++i) {
        (void)pool.submit([&done] { ++done; });
    }
    pool.shutdown();
    // Every queued task ran before the workers were joined.
    EXPECT_EQ(done.load(), 128);
}

TEST(ThreadPool, ShutdownIsIdempotentAndRejectsNewWork) {
    ThreadPool pool(2);
    pool.shutdown();
    pool.shutdown();  // second call is a no-op, not a crash
    EXPECT_THROW((void)pool.submit([] { return 0; }),
                 uavdc::util::ContractViolation);
}

}  // namespace
}  // namespace uavdc::util
