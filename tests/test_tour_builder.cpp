#include "uavdc/core/tour_builder.hpp"

#include <gtest/gtest.h>

#include "uavdc/util/rng.hpp"

namespace uavdc::core {
namespace {

TEST(TourBuilder, EmptyTour) {
    const TourBuilder t({0.0, 0.0});
    EXPECT_TRUE(t.empty());
    EXPECT_DOUBLE_EQ(t.length(), 0.0);
    EXPECT_DOUBLE_EQ(t.recompute_length(), 0.0);
}

TEST(TourBuilder, FirstInsertionOutAndBack) {
    TourBuilder t({0.0, 0.0});
    const auto ins = t.cheapest_insertion({30.0, 40.0});
    EXPECT_DOUBLE_EQ(ins.delta_m, 100.0);
    t.insert({30.0, 40.0}, 7, ins);
    EXPECT_EQ(t.size(), 1u);
    EXPECT_DOUBLE_EQ(t.length(), 100.0);
    EXPECT_EQ(t.keys(), std::vector<int>{7});
}

TEST(TourBuilder, IncrementalLengthMatchesRecompute) {
    util::Rng rng(5);
    TourBuilder t({0.0, 0.0});
    for (int i = 0; i < 30; ++i) {
        const geom::Vec2 p{rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)};
        t.insert(p, i, t.cheapest_insertion(p));
        ASSERT_NEAR(t.length(), t.recompute_length(), 1e-9) << "step " << i;
    }
    // Removals also stay consistent.
    while (t.size() > 3) {
        const std::size_t pos =
            static_cast<std::size_t>(rng.uniform_int(
                0, static_cast<std::int64_t>(t.size()) - 1));
        t.remove(pos);
        ASSERT_NEAR(t.length(), t.recompute_length(), 1e-9);
    }
}

TEST(TourBuilder, CheapestInsertionIsActuallyCheapest) {
    TourBuilder t({0.0, 0.0});
    // Fixed simple tour: depot -> (100,0) -> (100,100) -> (0,100) -> depot.
    t.insert({100.0, 0.0}, 0, t.cheapest_insertion({100.0, 0.0}));
    t.insert({100.0, 100.0}, 1, t.cheapest_insertion({100.0, 100.0}));
    t.insert({0.0, 100.0}, 2, t.cheapest_insertion({0.0, 100.0}));
    const geom::Vec2 probe{50.0, -1.0};  // just below the depot->(100,0) edge
    const auto ins = t.cheapest_insertion(probe);
    // Brute force all positions.
    double best = 1e18;
    for (std::size_t pos = 0; pos <= t.size(); ++pos) {
        TourBuilder copy = t;
        copy.insert(probe, 9, {pos, 0.0});  // delta ignored for comparison
        best = std::min(best, copy.recompute_length() - t.length());
    }
    EXPECT_NEAR(ins.delta_m, best, 1e-9);
}

TEST(TourBuilder, RemovalDeltaMatchesActualRemoval) {
    util::Rng rng(9);
    TourBuilder t({0.0, 0.0});
    for (int i = 0; i < 10; ++i) {
        const geom::Vec2 p{rng.uniform(0.0, 50.0), rng.uniform(0.0, 50.0)};
        t.insert(p, i, t.cheapest_insertion(p));
    }
    for (std::size_t pos = 0; pos < t.size(); ++pos) {
        TourBuilder copy = t;
        const double predicted = copy.removal_delta(pos);
        const double before = copy.length();
        copy.remove(pos);
        EXPECT_NEAR(copy.recompute_length(), before + predicted, 1e-9);
    }
}

TEST(TourBuilder, ReoptimizeNeverLengthens) {
    util::Rng rng(13);
    TourBuilder t({0.0, 0.0});
    for (int i = 0; i < 25; ++i) {
        const geom::Vec2 p{rng.uniform(0.0, 200.0), rng.uniform(0.0, 200.0)};
        // Insert at position 0 deliberately to create a bad tour.
        t.insert(p, i, {0, 0.0});
    }
    const double messy = t.recompute_length();
    const double opt = t.reoptimize();
    EXPECT_LE(opt, messy + 1e-9);
    EXPECT_NEAR(t.length(), t.recompute_length(), 1e-9);
    EXPECT_EQ(t.size(), 25u);
}

TEST(TourBuilder, ReoptimizePreservesKeyPairing) {
    util::Rng rng(17);
    TourBuilder t({0.0, 0.0});
    std::vector<geom::Vec2> pts;
    for (int i = 0; i < 12; ++i) {
        const geom::Vec2 p{rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)};
        pts.push_back(p);
        t.insert(p, i, t.cheapest_insertion(p));
    }
    t.reoptimize();
    for (std::size_t i = 0; i < t.size(); ++i) {
        const auto key = static_cast<std::size_t>(t.keys()[i]);
        EXPECT_EQ(t.stops()[i], pts[key]) << "key/stop pairing broken";
    }
}

}  // namespace
}  // namespace uavdc::core
