#include "uavdc/io/trace_export.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "test_util.hpp"
#include "uavdc/core/multi_tour.hpp"

namespace uavdc::io {
namespace {

sim::SimReport demo_report() {
    const auto inst =
        testing::manual_instance({{{30.0, 40.0}, 300.0}});
    model::FlightPlan plan;
    plan.stops.push_back({{30.0, 40.0}, 2.0, -1});
    return sim::Simulator().run(inst, plan);
}

TEST(TraceExport, CsvHasHeaderAndRows) {
    const auto rep = demo_report();
    const std::string path = ::testing::TempDir() + "/uavdc_trace.csv";
    save_trace_csv(path, rep.trace);
    std::ifstream in(path);
    std::string line;
    ASSERT_TRUE(std::getline(in, line));
    EXPECT_EQ(line, "time_s,kind,stop,device,value");
    int rows = 0;
    while (std::getline(in, line)) ++rows;
    EXPECT_EQ(rows, static_cast<int>(rep.trace.size()));
    EXPECT_GT(rows, 3);
    std::remove(path.c_str());
}

TEST(TraceExport, ReportToJson) {
    const auto rep = demo_report();
    const Json doc = to_json(rep);
    EXPECT_DOUBLE_EQ(doc.at("collected_mb").as_number(), rep.collected_mb);
    EXPECT_TRUE(doc.at("completed").as_bool());
    EXPECT_EQ(doc.at("trace").as_array().size(), rep.trace.size());
    EXPECT_EQ(doc.at("trace").as_array()[0].at("kind").as_string(),
              "depart");
    // Without trace.
    const Json lean = to_json(rep, false);
    EXPECT_FALSE(lean.contains("trace"));
}

TEST(TraceExport, ReportFileRoundTrips) {
    const auto rep = demo_report();
    const std::string path = ::testing::TempDir() + "/uavdc_report.json";
    save_report(path, rep);
    const Json loaded = load_json_file(path);
    EXPECT_DOUBLE_EQ(loaded.at("energy_used_j").as_number(),
                     rep.energy_used_j);
    std::remove(path.c_str());
}

}  // namespace
}  // namespace uavdc::io

namespace uavdc::core {
namespace {

TEST(MultiTourMakespan, AccountsForRechargeTime) {
    auto inst = testing::small_instance(30, 300.0, 61);
    inst.uav.energy_j = 3.5e4;
    MultiTourConfig cfg;
    cfg.tours = 3;
    cfg.inner.candidates.delta_m = 20.0;
    cfg.recharge_s = 600.0;
    const auto with = plan_multi_tour(inst, cfg);
    cfg.recharge_s = 0.0;
    const auto without = plan_multi_tour(inst, cfg);
    ASSERT_EQ(with.sorties_used, without.sorties_used);
    ASSERT_GT(with.sorties_used, 1);
    EXPECT_NEAR(with.makespan_s - without.makespan_s,
                600.0 * (with.sorties_used - 1), 1e-6);
    // Makespan at least the sum of tour times.
    double tour_time = 0.0;
    for (const auto& t : without.tours) {
        tour_time += t.energy(inst.depot, inst.uav).total_s();
    }
    EXPECT_NEAR(without.makespan_s, tour_time, 1e-6);
}

}  // namespace
}  // namespace uavdc::core
