#include "uavdc/workload/transforms.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "test_util.hpp"

namespace uavdc::workload {
namespace {

using testing::small_instance;

TEST(Transforms, ScaledPreservesRelativeLayout) {
    const auto inst = small_instance(20, 200.0, 81);
    const auto big = scaled(inst, 2.0);
    EXPECT_DOUBLE_EQ(big.region.width(), 2.0 * inst.region.width());
    ASSERT_EQ(big.devices.size(), inst.devices.size());
    // Pairwise distances double; volumes unchanged.
    const double d_before =
        geom::distance(inst.devices[0].pos, inst.devices[1].pos);
    const double d_after =
        geom::distance(big.devices[0].pos, big.devices[1].pos);
    EXPECT_NEAR(d_after, 2.0 * d_before, 1e-9);
    EXPECT_DOUBLE_EQ(big.devices[0].data_mb, inst.devices[0].data_mb);
}

TEST(Transforms, ScaledRejectsBadFactor) {
    const auto inst = small_instance(5, 100.0, 82);
    EXPECT_THROW((void)scaled(inst, 0.0), std::invalid_argument);
    EXPECT_THROW((void)scaled(inst, -1.0), std::invalid_argument);
}

TEST(Transforms, TranslatedShiftsEverything) {
    const auto inst = small_instance(10, 150.0, 83);
    const geom::Vec2 off{100.0, -50.0};
    const auto moved = translated(inst, off);
    EXPECT_EQ(moved.depot, inst.depot + off);
    EXPECT_EQ(moved.region.lo, inst.region.lo + off);
    for (std::size_t i = 0; i < inst.devices.size(); ++i) {
        EXPECT_EQ(moved.devices[i].pos, inst.devices[i].pos + off);
    }
}

TEST(Transforms, RotatedPreservesPairwiseDistances) {
    const auto inst = small_instance(15, 200.0, 84);
    const auto rot = rotated(inst, 1.0);
    ASSERT_EQ(rot.devices.size(), inst.devices.size());
    for (std::size_t i = 0; i + 1 < inst.devices.size(); ++i) {
        EXPECT_NEAR(
            geom::distance(rot.devices[i].pos, rot.devices[i + 1].pos),
            geom::distance(inst.devices[i].pos, inst.devices[i + 1].pos),
            1e-9);
    }
    rot.validate();
}

TEST(Transforms, RotateFullCircleIsIdentityUpToEps) {
    const auto inst = small_instance(8, 100.0, 85);
    const auto rot = rotated(inst, 2.0 * std::acos(-1.0));
    for (std::size_t i = 0; i < inst.devices.size(); ++i) {
        EXPECT_NEAR(rot.devices[i].pos.x, inst.devices[i].pos.x, 1e-9);
        EXPECT_NEAR(rot.devices[i].pos.y, inst.devices[i].pos.y, 1e-9);
    }
}

TEST(Transforms, CroppedKeepsOnlyWindowDevices) {
    const auto inst = small_instance(40, 300.0, 86);
    const geom::Aabb window{{0.0, 0.0}, {150.0, 150.0}};
    const auto crop = cropped(inst, window);
    EXPECT_LT(crop.devices.size(), inst.devices.size());
    for (const auto& d : crop.devices) {
        EXPECT_TRUE(window.contains(d.pos));
    }
    // Ids dense again.
    for (std::size_t i = 0; i < crop.devices.size(); ++i) {
        EXPECT_EQ(crop.devices[i].id, static_cast<int>(i));
    }
}

TEST(Transforms, MergedConcatenatesFields) {
    const auto a = small_instance(10, 150.0, 87);
    const auto b = translated(small_instance(12, 150.0, 88),
                              {200.0, 0.0});
    const auto m = merged(a, b);
    EXPECT_EQ(m.devices.size(), a.devices.size() + b.devices.size());
    EXPECT_TRUE(m.region.contains(a.devices[0].pos));
    EXPECT_TRUE(m.region.contains(b.devices[0].pos));
    EXPECT_EQ(m.depot, a.depot);
    EXPECT_NEAR(m.total_data_mb(),
                a.total_data_mb() + b.total_data_mb(), 1e-9);
}

TEST(Transforms, VolumeFactorScalesData) {
    const auto inst = small_instance(10, 150.0, 89);
    const auto doubled = with_volume_factor(inst, 2.0);
    EXPECT_NEAR(doubled.total_data_mb(), 2.0 * inst.total_data_mb(), 1e-9);
    const auto zero = with_volume_factor(inst, 0.0);
    EXPECT_DOUBLE_EQ(zero.total_data_mb(), 0.0);
    EXPECT_THROW((void)with_volume_factor(inst, -0.5),
                 std::invalid_argument);
}

}  // namespace
}  // namespace uavdc::workload
