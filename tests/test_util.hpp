#pragma once

#include <vector>

#include "uavdc/model/instance.hpp"
#include "uavdc/workload/generator.hpp"
#include "uavdc/workload/presets.hpp"

namespace uavdc::testing {

/// Small deterministic instance: `n` devices uniform in a `side` x `side`
/// region with paper UAV constants scaled for quick planning.
inline model::Instance small_instance(int n = 40, double side = 300.0,
                                      std::uint64_t seed = 7,
                                      double energy_j = 6.0e4) {
    workload::GeneratorConfig cfg = workload::paper_default();
    cfg.num_devices = n;
    cfg.region_w = side;
    cfg.region_h = side;
    cfg.uav.energy_j = energy_j;
    return workload::generate(cfg, seed);
}

/// Hand-built instance with explicit device placement.
inline model::Instance manual_instance(
    std::vector<std::pair<geom::Vec2, double>> devices, double side = 200.0,
    model::UavConfig uav = workload::paper_uav()) {
    model::Instance inst;
    inst.name = "manual";
    inst.region = geom::Aabb::of_size(side, side);
    inst.depot = {0.0, 0.0};
    inst.uav = uav;
    int id = 0;
    for (const auto& [pos, mb] : devices) {
        inst.devices.push_back({id++, pos, mb});
    }
    inst.validate();
    return inst;
}

}  // namespace uavdc::testing
