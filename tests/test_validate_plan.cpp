#include "uavdc/core/validate_plan.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "test_util.hpp"
#include "uavdc/core/algorithm2.hpp"

namespace uavdc::core {
namespace {

using testing::manual_instance;

bool has_kind(const std::vector<PlanViolation>& vs,
              PlanViolation::Kind kind) {
    for (const auto& v : vs) {
        if (v.kind == kind) return true;
    }
    return false;
}

TEST(ValidatePlan, CleanPlanPasses) {
    const auto inst = testing::small_instance(20, 250.0, 41);
    Algorithm2Config cfg;
    cfg.candidates.delta_m = 25.0;
    const auto res = GreedyCoveragePlanner(cfg).plan(inst);
    const auto val = validate_plan(inst, res.plan);
    EXPECT_TRUE(val.ok());
    EXPECT_TRUE(val.errors.empty());
}

TEST(ValidatePlan, NegativeDwellIsError) {
    const auto inst = manual_instance({{{50.0, 50.0}, 100.0}});
    model::FlightPlan plan;
    plan.stops.push_back({{50.0, 50.0}, -1.0, -1});
    const auto val = validate_plan(inst, plan);
    EXPECT_FALSE(val.ok());
    EXPECT_TRUE(has_kind(val.errors, PlanViolation::Kind::kNegativeDwell));
}

TEST(ValidatePlan, NonFiniteIsError) {
    const auto inst = manual_instance({{{50.0, 50.0}, 100.0}});
    model::FlightPlan plan;
    plan.stops.push_back(
        {{std::numeric_limits<double>::quiet_NaN(), 0.0}, 1.0, -1});
    const auto val = validate_plan(inst, plan);
    EXPECT_TRUE(has_kind(val.errors, PlanViolation::Kind::kNonFiniteValue));
}

TEST(ValidatePlan, EnergyExceededIsError) {
    auto inst = manual_instance({{{50.0, 50.0}, 100.0}});
    inst.uav.energy_j = 10.0;
    model::FlightPlan plan;
    plan.stops.push_back({{50.0, 50.0}, 1.0, -1});
    const auto val = validate_plan(inst, plan);
    EXPECT_TRUE(has_kind(val.errors, PlanViolation::Kind::kEnergyExceeded));
}

TEST(ValidatePlan, FarStopIsError) {
    const auto inst = manual_instance({{{50.0, 50.0}, 100.0}}, 200.0);
    model::FlightPlan plan;
    plan.stops.push_back({{900.0, 900.0}, 1.0, -1});
    const auto val = validate_plan(inst, plan);
    EXPECT_TRUE(
        has_kind(val.errors, PlanViolation::Kind::kStopFarFromField));
}

TEST(ValidatePlan, UselessStopIsWarning) {
    const auto inst = manual_instance({{{50.0, 50.0}, 100.0}}, 400.0);
    model::FlightPlan plan;
    plan.stops.push_back({{300.0, 300.0}, 5.0, -1});  // in-region, no device
    const auto val = validate_plan(inst, plan);
    EXPECT_TRUE(val.ok());  // warnings only
    EXPECT_TRUE(has_kind(val.warnings, PlanViolation::Kind::kUselessStop));
}

TEST(ValidatePlan, ZeroDwellStopIsWarning) {
    // Regression: zero-dwell stops silently wasted travel energy — the
    // useless-stop warning only fired for dwell > 0.
    const auto inst = manual_instance({{{50.0, 50.0}, 100.0}});
    model::FlightPlan plan;
    plan.stops.push_back({{50.0, 50.0}, 0.0, -1});  // device in range, 0 s
    const auto val = validate_plan(inst, plan);
    EXPECT_TRUE(val.ok());
    EXPECT_TRUE(has_kind(val.warnings, PlanViolation::Kind::kUselessStop));
}

TEST(ValidatePlan, ZeroDwellWarnsEvenWithoutCoverage) {
    const auto inst = manual_instance({{{50.0, 50.0}, 100.0}}, 400.0);
    model::FlightPlan plan;
    plan.stops.push_back({{300.0, 300.0}, 0.0, -1});  // no device, 0 s
    const auto val = validate_plan(inst, plan);
    EXPECT_TRUE(has_kind(val.warnings, PlanViolation::Kind::kUselessStop));
}

TEST(ValidatePlan, ConsecutiveDuplicateStopsAreWarning) {
    // Regression: back-to-back stops at the same position (dwells that
    // should have been merged) passed silently.
    const auto inst = manual_instance({{{50.0, 50.0}, 100.0}});
    model::FlightPlan plan;
    plan.stops.push_back({{50.0, 50.0}, 1.0, -1});
    plan.stops.push_back({{50.0, 50.0}, 1.0, -1});
    const auto val = validate_plan(inst, plan);
    EXPECT_TRUE(val.ok());
    ASSERT_TRUE(
        has_kind(val.warnings, PlanViolation::Kind::kDuplicateStop));
    for (const auto& w : val.warnings) {
        if (w.kind == PlanViolation::Kind::kDuplicateStop) {
            EXPECT_EQ(w.stop, 1);  // the second of the pair is flagged
        }
    }
}

TEST(ValidatePlan, NonAdjacentRevisitIsNotDuplicate) {
    // Revisiting a position later in the tour is legitimate (residual
    // pickup); only consecutive duplicates are flagged.
    const auto inst = manual_instance({{{50.0, 50.0}, 100.0}});
    model::FlightPlan plan;
    plan.stops.push_back({{50.0, 50.0}, 1.0, -1});
    plan.stops.push_back({{80.0, 50.0}, 1.0, -1});
    plan.stops.push_back({{50.0, 50.0}, 1.0, -1});
    const auto val = validate_plan(inst, plan);
    EXPECT_FALSE(
        has_kind(val.warnings, PlanViolation::Kind::kDuplicateStop));
}

TEST(ValidatePlan, EmptyPlanWithDataIsWarning) {
    const auto inst = manual_instance({{{50.0, 50.0}, 100.0}});
    const auto val = validate_plan(inst, {});
    EXPECT_TRUE(val.ok());
    EXPECT_TRUE(
        has_kind(val.warnings, PlanViolation::Kind::kEmptyPlanWithData));
}

TEST(ValidatePlan, KindsHaveNames) {
    EXPECT_EQ(to_string(PlanViolation::Kind::kNegativeDwell),
              "negative-dwell");
    EXPECT_EQ(to_string(PlanViolation::Kind::kEnergyExceeded),
              "energy-exceeded");
    EXPECT_EQ(to_string(PlanViolation::Kind::kUselessStop), "useless-stop");
    EXPECT_EQ(to_string(PlanViolation::Kind::kDuplicateStop),
              "duplicate-stop");
}

TEST(ValidatePlan, ViolationCarriesStopIndex) {
    const auto inst = manual_instance({{{50.0, 50.0}, 100.0}});
    model::FlightPlan plan;
    plan.stops.push_back({{50.0, 50.0}, 1.0, -1});
    plan.stops.push_back({{60.0, 50.0}, -2.0, -1});
    const auto val = validate_plan(inst, plan);
    ASSERT_FALSE(val.errors.empty());
    EXPECT_EQ(val.errors[0].stop, 1);
}

}  // namespace
}  // namespace uavdc::core
