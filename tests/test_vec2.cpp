#include "uavdc/geom/vec2.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

namespace uavdc::geom {
namespace {

TEST(Vec2, DefaultIsOrigin) {
    const Vec2 v;
    EXPECT_EQ(v.x, 0.0);
    EXPECT_EQ(v.y, 0.0);
}

TEST(Vec2, ArithmeticOperators) {
    const Vec2 a{1.0, 2.0};
    const Vec2 b{3.0, -4.0};
    EXPECT_EQ(a + b, Vec2(4.0, -2.0));
    EXPECT_EQ(a - b, Vec2(-2.0, 6.0));
    EXPECT_EQ(a * 2.0, Vec2(2.0, 4.0));
    EXPECT_EQ(2.0 * a, Vec2(2.0, 4.0));
    EXPECT_EQ(b / 2.0, Vec2(1.5, -2.0));
    EXPECT_EQ(-a, Vec2(-1.0, -2.0));
}

TEST(Vec2, CompoundAssignment) {
    Vec2 v{1.0, 1.0};
    v += {2.0, 3.0};
    EXPECT_EQ(v, Vec2(3.0, 4.0));
    v -= {1.0, 1.0};
    EXPECT_EQ(v, Vec2(2.0, 3.0));
    v *= 2.0;
    EXPECT_EQ(v, Vec2(4.0, 6.0));
    v /= 4.0;
    EXPECT_EQ(v, Vec2(1.0, 1.5));
}

TEST(Vec2, NormAndNorm2) {
    const Vec2 v{3.0, 4.0};
    EXPECT_DOUBLE_EQ(v.norm2(), 25.0);
    EXPECT_DOUBLE_EQ(v.norm(), 5.0);
}

TEST(Vec2, DotAndCross) {
    const Vec2 a{1.0, 2.0};
    const Vec2 b{3.0, 4.0};
    EXPECT_DOUBLE_EQ(a.dot(b), 11.0);
    EXPECT_DOUBLE_EQ(a.cross(b), -2.0);
    EXPECT_DOUBLE_EQ(b.cross(a), 2.0);
}

TEST(Vec2, NormalizedUnitLength) {
    const Vec2 v{3.0, 4.0};
    const Vec2 u = v.normalized();
    EXPECT_NEAR(u.norm(), 1.0, 1e-12);
    EXPECT_NEAR(u.x, 0.6, 1e-12);
    EXPECT_NEAR(u.y, 0.8, 1e-12);
}

TEST(Vec2, NormalizedZeroStaysZero) {
    const Vec2 z;
    EXPECT_EQ(z.normalized(), Vec2());
}

TEST(Vec2, Distance) {
    EXPECT_DOUBLE_EQ(distance({0.0, 0.0}, {3.0, 4.0}), 5.0);
    EXPECT_DOUBLE_EQ(distance2({0.0, 0.0}, {3.0, 4.0}), 25.0);
    EXPECT_DOUBLE_EQ(distance({1.0, 1.0}, {1.0, 1.0}), 0.0);
}

TEST(Vec2, DistanceSymmetry) {
    const Vec2 a{-2.5, 7.0};
    const Vec2 b{4.0, -1.0};
    EXPECT_DOUBLE_EQ(distance(a, b), distance(b, a));
}

TEST(Vec2, Lerp) {
    const Vec2 a{0.0, 0.0};
    const Vec2 b{10.0, -10.0};
    EXPECT_EQ(lerp(a, b, 0.0), a);
    EXPECT_EQ(lerp(a, b, 1.0), b);
    EXPECT_EQ(lerp(a, b, 0.5), Vec2(5.0, -5.0));
}

TEST(Vec2, StreamOutput) {
    std::ostringstream os;
    os << Vec2{1.5, -2.0};
    EXPECT_EQ(os.str(), "(1.5, -2)");
}

}  // namespace
}  // namespace uavdc::geom
