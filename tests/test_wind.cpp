#include "uavdc/sim/wind.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"
#include "uavdc/sim/simulator.hpp"

namespace uavdc::sim {
namespace {

using testing::manual_instance;

TEST(Wind, CalmMatchesAirspeed) {
    const Wind calm;
    EXPECT_TRUE(calm.calm());
    EXPECT_DOUBLE_EQ(calm.ground_speed({1.0, 0.0}, 10.0), 10.0);
    EXPECT_DOUBLE_EQ(calm.travel_time({0.0, 0.0}, {100.0, 0.0}, 10.0), 10.0);
}

TEST(Wind, TailwindSpeedsUp) {
    const Wind tail{{5.0, 0.0}};
    EXPECT_DOUBLE_EQ(tail.ground_speed({1.0, 0.0}, 10.0), 15.0);
    EXPECT_DOUBLE_EQ(tail.travel_time({0.0, 0.0}, {150.0, 0.0}, 10.0), 10.0);
}

TEST(Wind, HeadwindSlowsDown) {
    const Wind head{{-5.0, 0.0}};
    EXPECT_DOUBLE_EQ(head.ground_speed({1.0, 0.0}, 10.0), 5.0);
    EXPECT_DOUBLE_EQ(head.travel_time({0.0, 0.0}, {100.0, 0.0}, 10.0), 20.0);
}

TEST(Wind, CrosswindCostsSpeed) {
    const Wind cross{{0.0, 6.0}};
    // sqrt(10^2 - 6^2) = 8.
    EXPECT_DOUBLE_EQ(cross.ground_speed({1.0, 0.0}, 10.0), 8.0);
}

TEST(Wind, OverpoweringWindUnflyable) {
    const Wind gale{{0.0, 12.0}};
    EXPECT_DOUBLE_EQ(gale.ground_speed({1.0, 0.0}, 10.0), 0.0);
    EXPECT_GT(gale.travel_time({0.0, 0.0}, {10.0, 0.0}, 10.0), 1e17);
    const Wind storm_head{{-15.0, 0.0}};
    EXPECT_LT(storm_head.ground_speed({1.0, 0.0}, 10.0), 0.0);
}

TEST(Wind, ZeroLengthLegIsFree) {
    const Wind w{{3.0, 4.0}};
    EXPECT_DOUBLE_EQ(w.travel_time({5.0, 5.0}, {5.0, 5.0}, 10.0), 0.0);
}

TEST(Wind, RoundTripNeverFasterThanCalm) {
    // Headwind out + tailwind back is always a net loss.
    const Wind w{{4.0, 0.0}};
    const geom::Vec2 a{0.0, 0.0};
    const geom::Vec2 b{100.0, 0.0};
    const double calm_rt = 2.0 * 100.0 / 10.0;
    const double windy_rt =
        w.travel_time(a, b, 10.0) + w.travel_time(b, a, 10.0);
    EXPECT_GT(windy_rt, calm_rt);
}

TEST(WindSim, HeadwindBurnsExtraEnergy) {
    const auto inst = manual_instance({{{100.0, 0.0}, 150.0}}, 300.0);
    model::FlightPlan plan;
    plan.stops.push_back({{100.0, 0.0}, 1.0, -1});
    SimConfig calm_cfg;
    SimConfig windy_cfg;
    windy_cfg.wind = Wind{{-5.0, 0.0}};  // headwind out, tailwind home
    const auto calm = Simulator(calm_cfg).run(inst, plan);
    const auto windy = Simulator(windy_cfg).run(inst, plan);
    EXPECT_TRUE(calm.completed);
    EXPECT_TRUE(windy.completed);
    EXPECT_GT(windy.travel_s, calm.travel_s);
    EXPECT_GT(windy.energy_used_j, calm.energy_used_j);
    EXPECT_DOUBLE_EQ(windy.collected_mb, calm.collected_mb);
}

TEST(WindSim, StrongWindDepletesBattery) {
    auto inst = manual_instance({{{100.0, 0.0}, 150.0}}, 300.0);
    // Size the battery to just fit the calm plan.
    model::FlightPlan plan;
    plan.stops.push_back({{100.0, 0.0}, 1.0, -1});
    inst.uav.energy_j = plan.total_energy(inst.depot, inst.uav) + 100.0;
    SimConfig windy_cfg;
    windy_cfg.wind = Wind{{-8.0, 0.0}};  // 5x slower outbound
    const auto rep = Simulator(windy_cfg).run(inst, plan);
    EXPECT_TRUE(rep.battery_depleted);
    EXPECT_FALSE(rep.completed);
}

}  // namespace
}  // namespace uavdc::sim
