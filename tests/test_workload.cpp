#include <gtest/gtest.h>

#include <set>

#include "uavdc/workload/generator.hpp"
#include "uavdc/workload/presets.hpp"

namespace uavdc::workload {
namespace {

TEST(Generator, DeterministicForSameSeed) {
    const GeneratorConfig cfg = paper_scaled(0.3);
    const auto a = generate(cfg, 9);
    const auto b = generate(cfg, 9);
    ASSERT_EQ(a.devices.size(), b.devices.size());
    for (std::size_t i = 0; i < a.devices.size(); ++i) {
        EXPECT_EQ(a.devices[i].pos, b.devices[i].pos);
        EXPECT_DOUBLE_EQ(a.devices[i].data_mb, b.devices[i].data_mb);
    }
}

TEST(Generator, DifferentSeedsDiffer) {
    const GeneratorConfig cfg = paper_scaled(0.3);
    const auto a = generate(cfg, 1);
    const auto b = generate(cfg, 2);
    bool any_diff = false;
    for (std::size_t i = 0; i < a.devices.size(); ++i) {
        if (a.devices[i].pos != b.devices[i].pos) any_diff = true;
    }
    EXPECT_TRUE(any_diff);
}

TEST(Generator, DevicesInsideRegionWithDenseIds) {
    for (auto dep : {Deployment::kUniform, Deployment::kClustered,
                     Deployment::kGridJitter, Deployment::kRing}) {
        GeneratorConfig cfg = paper_scaled(0.4);
        cfg.deployment = dep;
        const auto inst = generate(cfg, 5);
        EXPECT_EQ(inst.devices.size(),
                  static_cast<std::size_t>(cfg.num_devices));
        for (std::size_t i = 0; i < inst.devices.size(); ++i) {
            EXPECT_EQ(inst.devices[i].id, static_cast<int>(i));
            EXPECT_TRUE(inst.region.contains(inst.devices[i].pos))
                << to_string(dep);
        }
    }
}

TEST(Generator, VolumeRangesRespected) {
    for (auto vm : {VolumeModel::kUniform, VolumeModel::kExponential,
                    VolumeModel::kFixed, VolumeModel::kBimodal}) {
        GeneratorConfig cfg = paper_scaled(0.4);
        cfg.volumes = vm;
        const auto inst = generate(cfg, 6);
        for (const auto& d : inst.devices) {
            EXPECT_GE(d.data_mb, cfg.min_mb - 1e-9) << to_string(vm);
            EXPECT_LE(d.data_mb, cfg.max_mb + 1e-9) << to_string(vm);
        }
    }
}

TEST(Generator, FixedVolumesAreConstant) {
    GeneratorConfig cfg = paper_scaled(0.3);
    cfg.volumes = VolumeModel::kFixed;
    const auto inst = generate(cfg, 7);
    for (const auto& d : inst.devices) {
        EXPECT_DOUBLE_EQ(d.data_mb, (cfg.min_mb + cfg.max_mb) / 2.0);
    }
}

TEST(Generator, UniformVolumesSpreadOut) {
    GeneratorConfig cfg = paper_default();
    const auto inst = generate(cfg, 8);
    double lo = 1e18, hi = 0.0;
    for (const auto& d : inst.devices) {
        lo = std::min(lo, d.data_mb);
        hi = std::max(hi, d.data_mb);
    }
    EXPECT_LT(lo, 200.0);   // some light devices
    EXPECT_GT(hi, 900.0);   // some heavy devices
}

TEST(Generator, ClusteredIsSpatiallyConcentrated) {
    GeneratorConfig uni = paper_default();
    GeneratorConfig clu = paper_default();
    clu.deployment = Deployment::kClustered;
    clu.clusters = 4;
    clu.cluster_stddev = 30.0;
    const auto a = generate(uni, 9);
    const auto b = generate(clu, 9);
    // Mean nearest-neighbour distance is much smaller under clustering.
    auto mean_nn = [](const model::Instance& inst) {
        double s = 0.0;
        for (const auto& d : inst.devices) {
            double best = 1e18;
            for (const auto& e : inst.devices) {
                if (d.id == e.id) continue;
                best = std::min(best, geom::distance(d.pos, e.pos));
            }
            s += best;
        }
        return s / static_cast<double>(inst.devices.size());
    };
    EXPECT_LT(mean_nn(b), 0.8 * mean_nn(a));
}

TEST(Generator, DepotClampedIntoRegion) {
    GeneratorConfig cfg = paper_scaled(0.2);
    cfg.depot = {-50.0, 1e6};
    const auto inst = generate(cfg, 10);
    EXPECT_TRUE(inst.region.contains(inst.depot));
}

TEST(Generator, ValidationErrors) {
    GeneratorConfig cfg = paper_default();
    cfg.num_devices = -1;
    EXPECT_THROW(generate(cfg, 1), std::invalid_argument);
    cfg = paper_default();
    cfg.min_mb = 500.0;
    cfg.max_mb = 100.0;
    EXPECT_THROW(generate(cfg, 1), std::invalid_argument);
    cfg = paper_default();
    cfg.region_w = 0.0;
    EXPECT_THROW(generate(cfg, 1), std::invalid_argument);
}

TEST(Generator, ZeroDevicesOk) {
    GeneratorConfig cfg = paper_scaled(0.2);
    cfg.num_devices = 0;
    const auto inst = generate(cfg, 1);
    EXPECT_TRUE(inst.devices.empty());
}

TEST(Generator, NameEncodesSetup) {
    const auto inst = generate(paper_scaled(0.2), 12);
    EXPECT_NE(inst.name.find("uniform"), std::string::npos);
    EXPECT_NE(inst.name.find("s12"), std::string::npos);
}


TEST(Generator, PoissonDiskRespectsMinSpacing) {
    GeneratorConfig cfg = paper_scaled(0.3);
    cfg.deployment = Deployment::kPoissonDisk;
    cfg.num_devices = 60;
    cfg.poisson_min_dist = 25.0;
    const auto inst = generate(cfg, 4);
    ASSERT_EQ(inst.devices.size(), 60u);
    for (std::size_t i = 0; i < inst.devices.size(); ++i) {
        for (std::size_t j = i + 1; j < inst.devices.size(); ++j) {
            EXPECT_GE(geom::distance(inst.devices[i].pos,
                                     inst.devices[j].pos),
                      25.0 - 1e-9);
        }
    }
    EXPECT_EQ(to_string(cfg.deployment), "poisson-disk");
}

TEST(Generator, PoissonDiskAutoRadiusCompletes) {
    GeneratorConfig cfg = paper_scaled(0.3);
    cfg.deployment = Deployment::kPoissonDisk;
    cfg.num_devices = 200;  // dense: auto radius must shrink to fit
    const auto inst = generate(cfg, 5);
    EXPECT_EQ(inst.devices.size(), 200u);
    for (const auto& d : inst.devices) {
        EXPECT_TRUE(inst.region.contains(d.pos));
    }
}

TEST(Presets, PaperDefaultMatchesSectionVII) {
    const GeneratorConfig cfg = paper_default();
    EXPECT_EQ(cfg.num_devices, 500);
    EXPECT_DOUBLE_EQ(cfg.region_w, 1000.0);
    EXPECT_DOUBLE_EQ(cfg.region_h, 1000.0);
    EXPECT_DOUBLE_EQ(cfg.min_mb, 100.0);
    EXPECT_DOUBLE_EQ(cfg.max_mb, 1000.0);
    EXPECT_DOUBLE_EQ(cfg.uav.energy_j, 3.0e5);
    EXPECT_DOUBLE_EQ(cfg.uav.coverage_radius_m, 50.0);
    EXPECT_DOUBLE_EQ(cfg.uav.bandwidth_mbps, 150.0);
    EXPECT_DOUBLE_EQ(cfg.uav.hover_power_w, 150.0);
    EXPECT_DOUBLE_EQ(cfg.uav.travel_rate, 100.0);
    EXPECT_EQ(cfg.uav.travel_energy_model,
              model::TravelEnergyModel::kPerMeter);
    EXPECT_DOUBLE_EQ(cfg.uav.speed_mps, 10.0);
}

TEST(Presets, ScaledKeepsDensity) {
    const GeneratorConfig half = paper_scaled(0.5);
    EXPECT_DOUBLE_EQ(half.region_w, 500.0);
    EXPECT_EQ(half.num_devices, 125);  // 500 * 0.25
    const double full_density =
        500.0 / (1000.0 * 1000.0);
    const double scaled_density =
        static_cast<double>(half.num_devices) /
        (half.region_w * half.region_h);
    EXPECT_NEAR(scaled_density, full_density, 1e-6);
}

TEST(Presets, ScenarioPresetsGenerate) {
    for (const auto& cfg :
         {smart_city(), disaster_response(), farm_monitoring()}) {
        const auto inst = generate(cfg, 3);
        EXPECT_GT(inst.devices.size(), 0u);
        inst.validate();
    }
}

TEST(Presets, ScenarioDeployments) {
    EXPECT_EQ(smart_city().deployment, Deployment::kClustered);
    EXPECT_EQ(disaster_response().deployment, Deployment::kRing);
    EXPECT_EQ(farm_monitoring().deployment, Deployment::kGridJitter);
}

}  // namespace
}  // namespace uavdc::workload
