// Cross-product robustness sweep: every deployment model x every volume
// model produces instances on which Algorithm 3 plans feasibly and the
// simulator agrees with the closed-form evaluator. Catches generator or
// planner assumptions that only hold for the paper's uniform/uniform
// setting.

#include <gtest/gtest.h>

#include <tuple>

#include "uavdc/core/algorithm3.hpp"
#include "uavdc/core/evaluate.hpp"
#include "uavdc/sim/simulator.hpp"
#include "uavdc/workload/presets.hpp"

namespace uavdc {
namespace {

using Case = std::tuple<workload::Deployment, workload::VolumeModel>;

class WorkloadSweep : public ::testing::TestWithParam<Case> {};

TEST_P(WorkloadSweep, PlanFeasibleAndSimConsistent) {
    const auto [deployment, volumes] = GetParam();
    workload::GeneratorConfig cfg = workload::paper_scaled(0.3);
    cfg.deployment = deployment;
    cfg.volumes = volumes;
    cfg.uav.energy_j = 5.0e4;
    const auto inst = workload::generate(cfg, 7);

    core::Algorithm3Config pcfg;
    pcfg.candidates.delta_m = 20.0;
    pcfg.k = 2;
    const auto res = core::PartialCollectionPlanner(pcfg).plan(inst);
    EXPECT_TRUE(res.plan.feasible(inst.depot, inst.uav, 1e-6));

    const auto ev = core::evaluate_plan(inst, res.plan);
    sim::SimConfig scfg;
    scfg.record_trace = false;
    const auto rep = sim::Simulator(scfg).run(inst, res.plan);
    EXPECT_TRUE(rep.completed);
    EXPECT_NEAR(rep.collected_mb, ev.collected_mb, 1e-6);
    EXPECT_GT(ev.collected_mb, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllCombinations, WorkloadSweep,
    ::testing::Combine(
        ::testing::Values(workload::Deployment::kUniform,
                          workload::Deployment::kClustered,
                          workload::Deployment::kGridJitter,
                          workload::Deployment::kRing,
                          workload::Deployment::kHalton,
                          workload::Deployment::kPoissonDisk),
        ::testing::Values(workload::VolumeModel::kUniform,
                          workload::VolumeModel::kExponential,
                          workload::VolumeModel::kFixed,
                          workload::VolumeModel::kBimodal)),
    [](const ::testing::TestParamInfo<Case>& info) {
        std::string name = workload::to_string(std::get<0>(info.param)) +
                           "_" +
                           workload::to_string(std::get<1>(info.param));
        for (char& c : name) {
            if (c == '-') c = '_';  // gtest names must be identifiers
        }
        return name;
    });

}  // namespace
}  // namespace uavdc
