// uavdc — command-line front end for the library.
//
//   uavdc generate --preset=paper|smart-city|disaster|farm|scale-large
//                  [--devices=N] [--side=M] [--energy=J] [--seed=S]
//                  --out=instance.json
//   uavdc plan     --instance=instance.json --algo=alg1|alg2|alg3|benchmark
//                  [--delta=10] [--k=2] [--reduce] [--out=plan.json]
//   uavdc eval     --instance=instance.json --plan=plan.json [--json]
//   uavdc sim      --instance=instance.json --plan=plan.json [--trace]
//   uavdc render   --instance=instance.json [--plan=plan.json]
//                  --out=field.svg
//
// Exit code 0 on success, 1 on usage errors, 2 on runtime failures.

#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "uavdc/core/compare.hpp"
#include "uavdc/conformance/conformance.hpp"
#include "uavdc/core/evaluate.hpp"
#include "uavdc/core/metrics.hpp"
#include "uavdc/core/planning_context.hpp"
#include "uavdc/core/registry.hpp"
#include "uavdc/core/sensitivity.hpp"
#include "uavdc/core/validate_plan.hpp"
#include "uavdc/io/serialize.hpp"
#include "uavdc/io/svg.hpp"
#include "uavdc/net/loadgen.hpp"
#include "uavdc/net/router.hpp"
#include "uavdc/net/signal.hpp"
#include "uavdc/net/tcp_server.hpp"
#include "uavdc/service/jsonl.hpp"
#include "uavdc/service/workload_gen.hpp"
#include "uavdc/sim/monte_carlo.hpp"
#include "uavdc/sim/simulator.hpp"
#include "uavdc/util/flags.hpp"
#include "uavdc/util/table.hpp"
#include "uavdc/util/thread_pool.hpp"
#include "uavdc/workload/presets.hpp"

namespace {

using namespace uavdc;

int usage() {
    std::cerr <<
        "usage: uavdc <command> [flags]\n"
        "  generate  --preset=paper|smart-city|disaster|farm|scale-large\n"
        "            --out=FILE\n"
        "            [--devices=N] [--side=M] [--energy=J] [--seed=S]\n"
        "  plan      --instance=FILE --algo=alg1|alg2|alg3|benchmark\n"
        "            [--delta=10] [--k=2] [--max-candidates=4000]\n"
        "            [--scoring=incremental|incremental-fast|reference]\n"
        "            [--reduce] [--reduce-coarsen=F] [--reduce-band=M]\n"
        "            [--reduce-consolidate=N] [--out=FILE]\n"
        "  eval      --instance=FILE --plan=FILE [--json]\n"
        "  sim       --instance=FILE --plan=FILE [--trace]\n"
        "  validate  --instance=FILE --plan=FILE\n"
        "  compare   --instance=FILE [--algos=a,b,...] [--delta=10]\n"
        "            [--json]\n"
        "  robustness --instance=FILE --plan=FILE [--trials=64]\n"
        "            [--wind-max=4] [--taper-max=0.5]\n"
        "  conformance [--instances=100] [--seed=S] [--algos=a,b,...]\n"
        "            [--tol=1e-6] [--no-stress] [--max-failures=8]\n"
        "            [--fast-scoring] [--fast-tol=1e-9]\n"
        "            [--reduction] [--reduction-tol=0.01]\n"
        "  sensitivity --instance=FILE [--algo=alg2] [--perturb=0.2]\n"
        "  render    --instance=FILE [--plan=FILE] --out=FILE.svg\n"
        "  serve     [--in=FILE] [--out=FILE] [--workers=4] [--queue=256]\n"
        "            [--cache=512] [--delta=10] [--k=2]\n"
        "            [--max-candidates=4000] [--reduce]\n"
        "            [--reduce-coarsen=F] [--reduce-band=M]\n"
        "            [--reduce-consolidate=N] [--stats] [--summary]\n"
        "            [--tcp --host=127.0.0.1 --port=0 [--announce]\n"
        "             [--repo=FILE] [--max-frame=BYTES]\n"
        "             [--write-limit=BYTES]]\n"
        "  route     --shards=N | --endpoints=p1,p2,...\n"
        "            [--host=127.0.0.1] [--port=0] [--announce]\n"
        "            [--shard-workers=W] [--repo-dir=DIR]\n"
        "  loadgen   --connect=HOST:PORT | --port=P [--connections=8]\n"
        "            [--pipeline=32] [--requests=10000] [--instances=4]\n"
        "            [--seed=7] [--algos=a,b,...] [--newline]\n"
        "            [--capture-out=FILE] [--emit-jsonl=FILE]\n"
        "  serve-gen [--requests=200] [--instances=6] [--seed=1]\n"
        "            [--algos=a,b,...] [--no-control] [--out=FILE]\n";
    return 1;
}

workload::GeneratorConfig preset_by_name(const std::string& name) {
    if (name == "paper") return workload::paper_default();
    if (name == "smart-city") return workload::smart_city();
    if (name == "disaster") return workload::disaster_response();
    if (name == "farm") return workload::farm_monitoring();
    if (name == "scale-large") return workload::scale_large();
    throw std::invalid_argument("unknown preset '" + name + "'");
}

/// Shared --reduce* flag plumbing for plan/serve (alg2/alg3 only; the
/// other planners ignore the reduction config).
void apply_reduction_flags(const util::Flags& flags,
                           core::PlannerOptions& opts) {
    if (flags.get_bool("reduce", false)) opts.reduction.dominance = true;
    opts.reduction.coarsen_factor =
        flags.get_int("reduce-coarsen", opts.reduction.coarsen_factor);
    opts.reduction.refine_band_m =
        flags.get_double("reduce-band", opts.reduction.refine_band_m);
    opts.reduction.consolidate_to =
        flags.get_int("reduce-consolidate", opts.reduction.consolidate_to);
}

int cmd_generate(const util::Flags& flags) {
    auto cfg = preset_by_name(flags.get_string("preset", "paper"));
    if (flags.has("devices")) {
        cfg.num_devices = flags.get_int("devices", cfg.num_devices);
    }
    if (flags.has("side")) {
        cfg.region_w = cfg.region_h = flags.get_double("side", cfg.region_w);
    }
    if (flags.has("energy")) {
        cfg.uav.energy_j = flags.get_double("energy", cfg.uav.energy_j);
    }
    const auto inst = workload::generate(
        cfg, static_cast<std::uint64_t>(flags.get_int64("seed", 1)));
    const std::string out = flags.get_string("out", "");
    if (out.empty()) {
        std::cerr << "generate: --out is required\n";
        return 1;
    }
    io::save_instance(out, inst);
    std::cout << "wrote " << out << ": " << inst.num_devices()
              << " devices, "
              << util::Table::fmt(inst.total_data_mb() / 1000.0, 2)
              << " GB stored\n";
    return 0;
}

int cmd_plan(const util::Flags& flags) {
    const auto inst = io::load_instance(flags.get_string("instance", ""));
    core::PlannerOptions opts;
    opts.delta_m = flags.get_double("delta", opts.delta_m);
    opts.k = flags.get_int("k", opts.k);
    opts.max_candidates =
        flags.get_int("max-candidates", opts.max_candidates);
    const std::string scoring =
        flags.get_string("scoring", core::to_string(opts.scoring));
    if (const auto engine = core::scoring_engine_from_string(scoring)) {
        opts.scoring = *engine;
    } else {
        throw std::runtime_error(
            "unknown scoring '" + scoring +
            "' (expected incremental|incremental-fast|reference)");
    }
    apply_reduction_flags(flags, opts);
    auto planner =
        core::make_planner(flags.get_string("algo", "alg3"), opts);
    // Shared precompute: repeated plans of the same instance (any algo with
    // matching grid options) reuse the cached candidate set.
    const auto ctx = core::PlanningContext::obtain(inst, opts.hover_config());
    const auto res = planner->plan(*ctx);
    const auto ev = core::evaluate_plan(inst, res.plan);
    std::cout << planner->name() << ": " << res.plan.num_stops()
              << " stops, "
              << util::Table::fmt(ev.collected_mb / 1000.0, 2) << " GB ("
              << util::Table::fmt(
                     100.0 * ev.collected_mb /
                         std::max(inst.total_data_mb(), 1e-9),
                     1)
              << "% of stored), energy "
              << util::Table::fmt(ev.energy_j, 0) << " / "
              << util::Table::fmt(inst.uav.energy_j, 0) << " J, planned in "
              << util::Table::fmt(res.stats.runtime_s * 1e3, 1) << " ms\n";
    const std::string out = flags.get_string("out", "");
    if (!out.empty()) {
        io::save_plan(out, res.plan);
        std::cout << "wrote " << out << "\n";
    }
    return 0;
}

int cmd_eval(const util::Flags& flags) {
    const auto inst = io::load_instance(flags.get_string("instance", ""));
    const auto plan = io::load_plan(flags.get_string("plan", ""));
    const auto ev = core::evaluate_plan(inst, plan);
    const auto m = core::compute_metrics(inst, plan);
    if (flags.get_bool("json", false)) {
        io::Json doc = io::to_json(ev);
        doc["jain_fairness"] = m.jain_fairness;
        doc["hover_fraction"] = m.hover_fraction;
        doc["energy_per_gb_j"] = m.energy_per_gb_j;
        doc["mean_drain_latency_s"] = m.mean_drain_latency_s;
        std::cout << doc.dump(2) << "\n";
        return 0;
    }
    util::Table t({"metric", "value"});
    t.add_row({"collected", util::Table::fmt(ev.collected_mb / 1000.0, 3) +
                                " GB (" +
                                util::Table::fmt(100.0 * m.collected_fraction,
                                                 1) +
                                "%)"});
    t.add_row({"energy", util::Table::fmt(ev.energy_j, 0) + " J (" +
                             (ev.energy_feasible ? "feasible"
                                                 : "INFEASIBLE") +
                             ")"});
    t.add_row({"tour time", util::Table::fmt(ev.tour_time_s, 1) + " s"});
    t.add_row({"tour length", util::Table::fmt(m.tour_length_m, 0) + " m"});
    t.add_row({"hover fraction", util::Table::fmt(m.hover_fraction, 3)});
    t.add_row({"devices drained",
               std::to_string(ev.devices_drained) + " / " +
                   std::to_string(inst.num_devices())});
    t.add_row({"devices missed", std::to_string(m.devices_missed)});
    t.add_row({"Jain fairness", util::Table::fmt(m.jain_fairness, 3)});
    t.add_row({"mean drain latency",
               util::Table::fmt(m.mean_drain_latency_s, 1) + " s"});
    t.add_row({"energy per GB",
               util::Table::fmt(m.energy_per_gb_j, 0) + " J"});
    t.print(std::cout);
    return 0;
}

int cmd_sim(const util::Flags& flags) {
    const auto inst = io::load_instance(flags.get_string("instance", ""));
    const auto plan = io::load_plan(flags.get_string("plan", ""));
    sim::SimConfig cfg;
    cfg.record_trace = flags.get_bool("trace", false);
    const auto rep = sim::Simulator(cfg).run(inst, plan);
    std::cout << (rep.completed ? "tour completed" : "TOUR TRUNCATED")
              << (rep.battery_depleted ? " (battery depleted)" : "") << "\n"
              << "  collected : "
              << util::Table::fmt(rep.collected_mb / 1000.0, 3) << " GB\n"
              << "  duration  : " << util::Table::fmt(rep.duration_s, 1)
              << " s (" << util::Table::fmt(rep.hover_s, 1) << " hover / "
              << util::Table::fmt(rep.travel_s, 1) << " travel)\n"
              << "  energy    : " << util::Table::fmt(rep.energy_used_j, 0)
              << " / " << util::Table::fmt(inst.uav.energy_j, 0) << " J\n"
              << "  stops     : " << rep.stops_visited << " / "
              << plan.stops.size() << "\n";
    if (cfg.record_trace) {
        for (const auto& e : rep.trace) {
            std::cout << "  " << e.to_string() << "\n";
        }
    }
    return rep.completed ? 0 : 2;
}

int cmd_validate(const util::Flags& flags) {
    const auto inst = io::load_instance(flags.get_string("instance", ""));
    const auto plan = io::load_plan(flags.get_string("plan", ""));
    const auto val = core::validate_plan(inst, plan);
    for (const auto& v : val.errors) {
        std::cout << "ERROR   [" << core::to_string(v.kind) << "] stop "
                  << v.stop << ": " << v.detail << "\n";
    }
    for (const auto& v : val.warnings) {
        std::cout << "warning [" << core::to_string(v.kind) << "] stop "
                  << v.stop << ": " << v.detail << "\n";
    }
    if (val.ok()) {
        std::cout << "plan OK (" << plan.stops.size() << " stops, "
                  << val.warnings.size() << " warnings)\n";
        return 0;
    }
    return 2;
}

int cmd_compare(const util::Flags& flags) {
    const auto inst = io::load_instance(flags.get_string("instance", ""));
    core::PlannerOptions opts;
    opts.delta_m = flags.get_double("delta", opts.delta_m);
    opts.k = flags.get_int("k", opts.k);
    std::vector<std::string> names;
    {
        std::stringstream ss(flags.get_string("algos", ""));
        std::string tok;
        while (std::getline(ss, tok, ',')) {
            if (!tok.empty()) names.push_back(tok);
        }
    }
    // Planners fan out across the process-wide pool — the same workers the
    // planners' own parallel_for uses, so no extra threads are spawned.
    const auto results =
        core::compare_planners(inst, opts, names, &util::global_pool());
    if (flags.get_bool("json", false)) {
        io::Json::Array arr;
        for (const auto& r : results) {
            io::Json row = io::to_json(r.evaluation);
            row["planner"] = r.name;
            row["runtime_s"] = r.runtime_s;
            row["jain_fairness"] = r.metrics.jain_fairness;
            arr.push_back(std::move(row));
        }
        io::Json doc;
        doc["results"] = io::Json(std::move(arr));
        std::cout << doc.dump(2) << "\n";
        return 0;
    }
    util::Table t({"planner", "collected [GB]", "of stored", "stops",
                   "fairness", "time [ms]"});
    const double total = std::max(inst.total_data_mb(), 1e-9);
    for (const auto& r : results) {
        t.add_row({r.name,
                   util::Table::fmt(r.evaluation.collected_mb / 1000.0, 2),
                   util::Table::fmt(
                       100.0 * r.evaluation.collected_mb / total, 1) + "%",
                   std::to_string(r.plan.num_stops()),
                   util::Table::fmt(r.metrics.jain_fairness, 3),
                   util::Table::fmt(r.runtime_s * 1e3, 1)});
    }
    t.print(std::cout);
    return 0;
}

int cmd_robustness(const util::Flags& flags) {
    const auto inst = io::load_instance(flags.get_string("instance", ""));
    const auto plan = io::load_plan(flags.get_string("plan", ""));
    sim::DisturbanceModel model;
    model.wind_max_mps = flags.get_double("wind-max", model.wind_max_mps);
    model.taper_max = flags.get_double("taper-max", model.taper_max);
    model.early_departure = flags.get_bool("early-departure", false);
    const int trials = flags.get_int("trials", 64);
    const auto rep = sim::evaluate_robustness(inst, plan, model, trials);
    util::Table t({"metric", "value"});
    t.add_row({"trials", std::to_string(rep.trials)});
    t.add_row({"completion rate",
               util::Table::fmt(100.0 * rep.completion_rate, 1) + "%"});
    t.add_row({"mean volume", util::Table::fmt(rep.mean_gb, 2) + " GB"});
    t.add_row({"p10 / p90",
               util::Table::fmt(rep.p10_gb, 2) + " / " +
                   util::Table::fmt(rep.p90_gb, 2) + " GB"});
    t.add_row({"worst case", util::Table::fmt(rep.worst_gb, 2) + " GB"});
    t.add_row({"mean energy",
               util::Table::fmt(rep.mean_energy_j, 0) + " J"});
    t.print(std::cout);
    return rep.completion_rate >= 0.999 ? 0 : 2;
}

int cmd_conformance(const util::Flags& flags) {
    conformance::ConformanceFuzzConfig cfg;
    cfg.instances = flags.get_int("instances", cfg.instances);
    cfg.seed = static_cast<std::uint64_t>(
        flags.get_int64("seed", static_cast<std::int64_t>(cfg.seed)));
    cfg.tol = flags.get_double("tol", cfg.tol);
    cfg.stress_energy = !flags.get_bool("no-stress", false);
    cfg.max_failures = flags.get_int("max-failures", cfg.max_failures);
    cfg.check_fast_scoring = flags.get_bool("fast-scoring", false);
    cfg.fast_rel_tol = flags.get_double("fast-tol", cfg.fast_rel_tol);
    cfg.check_reduction = flags.get_bool("reduction", false);
    cfg.reduction_rel_tol =
        flags.get_double("reduction-tol", cfg.reduction_rel_tol);
    cfg.pool = &util::global_pool();  // fuzz instances concurrently
    {
        std::stringstream ss(flags.get_string("algos", ""));
        std::string tok;
        while (std::getline(ss, tok, ',')) {
            if (!tok.empty()) cfg.planners.push_back(tok);
        }
    }
    const auto summary = conformance::fuzz_conformance(cfg);
    util::Table t({"metric", "value"});
    t.add_row({"instances", std::to_string(summary.instances)});
    t.add_row({"plans cross-checked",
               std::to_string(summary.plans_checked)});
    t.add_row({"mismatched fields", std::to_string(summary.mismatches)});
    t.add_row({"failing cases", std::to_string(summary.failures.size())});
    t.print(std::cout);
    for (const auto& f : summary.failures) {
        std::cout << "FAIL planner=" << f.planner << " instance-seed="
                  << f.instance_seed
                  << (f.stressed ? " (stressed battery)" : "") << "\n";
        for (const auto& m : f.mismatches) {
            std::cout << "  [" << conformance::to_string(m.check) << "] "
                      << m.field << ": expected " << m.expected << ", got "
                      << m.actual << " — " << m.detail << "\n";
        }
    }
    if (summary.ok()) {
        std::cout << "conformance OK: evaluator, simulator, and energy "
                     "accounting agree\n";
        return 0;
    }
    return 2;
}

int cmd_sensitivity(const util::Flags& flags) {
    const auto inst = io::load_instance(flags.get_string("instance", ""));
    core::PlannerOptions opts;
    opts.delta_m = flags.get_double("delta", opts.delta_m);
    opts.k = flags.get_int("k", opts.k);
    const auto entries = core::analyze_sensitivity(
        inst, flags.get_string("algo", "alg2"), opts,
        flags.get_double("perturb", 0.2));
    util::Table t({"parameter", "baseline", "-p [GB]", "+p [GB]",
                   "elasticity"});
    for (const auto& e : entries) {
        t.add_row({e.parameter, util::Table::fmt(e.baseline_value, 1),
                   util::Table::fmt(e.down_gb, 2),
                   util::Table::fmt(e.up_gb, 2),
                   util::Table::fmt(e.elasticity, 3)});
    }
    t.print(std::cout);
    return 0;
}

int cmd_serve_tcp(const util::Flags& flags,
                  const service::PlanService::Config& svc_cfg) {
    auto& sig = net::ShutdownSignal::install();
    net::TcpServerConfig cfg;
    cfg.host = flags.get_string("host", cfg.host);
    cfg.port = flags.get_int("port", 0);
    cfg.service = svc_cfg;
    cfg.repo_path = flags.get_string("repo", "");
    cfg.max_frame_bytes = static_cast<std::size_t>(flags.get_int64(
        "max-frame", static_cast<std::int64_t>(cfg.max_frame_bytes)));
    cfg.write_queue_limit = static_cast<std::size_t>(flags.get_int64(
        "write-limit", static_cast<std::int64_t>(cfg.write_queue_limit)));
    cfg.stop = &sig.flag();
    cfg.wake_fd = sig.wake_fd();
    if (flags.get_bool("announce", false)) {
        // Machine handshake for parents that spawned us on --port=0: the
        // first stdout line is `LISTENING <port>`, nothing else precedes it.
        cfg.on_listening = [](int port) {
            std::cout << "LISTENING " << port << "\n" << std::flush;
        };
    } else {
        cfg.on_listening = [](int port) {
            std::cerr << "serve: listening on tcp port " << port << "\n";
        };
    }

    net::TcpServer server(std::move(cfg));
    const auto res = server.run();
    std::cerr << "serve: drained; " << res.transport.requests
              << " requests over " << res.transport.connections_opened
              << " connections, " << res.transport.frames_malformed
              << " malformed frames, " << res.transport.shed_on_shutdown
              << " shed at shutdown; ok=" << res.service.ok
              << " cache hit rate "
              << util::Table::fmt(
                     100.0 *
                         (res.service.cache_hits + res.service.cache_misses
                              ? static_cast<double>(res.service.cache_hits) /
                                    static_cast<double>(
                                        res.service.cache_hits +
                                        res.service.cache_misses)
                              : 0.0),
                     1)
              << "%";
    if (!flags.get_string("repo", "").empty()) {
        std::cerr << "; repo preloaded " << res.preloaded.instances
                  << " instances + " << res.preloaded.responses
                  << " responses, appended " << res.repo_appends;
    }
    std::cerr << "\n";
    return res.service.internal_errors == 0 ? 0 : 2;
}

int cmd_serve(const util::Flags& flags) {
    service::JsonlConfig cfg;
    cfg.service.workers = static_cast<std::size_t>(
        flags.get_int("workers", static_cast<int>(cfg.service.workers)));
    cfg.service.queue_capacity = static_cast<std::size_t>(flags.get_int(
        "queue", static_cast<int>(cfg.service.queue_capacity)));
    cfg.service.response_cache_capacity = static_cast<std::size_t>(
        flags.get_int("cache",
                      static_cast<int>(cfg.service.response_cache_capacity)));
    cfg.service.defaults.delta_m =
        flags.get_double("delta", cfg.service.defaults.delta_m);
    cfg.service.defaults.k = flags.get_int("k", cfg.service.defaults.k);
    cfg.service.defaults.max_candidates = flags.get_int(
        "max-candidates", cfg.service.defaults.max_candidates);
    apply_reduction_flags(flags, cfg.service.defaults);
    cfg.final_stats = flags.get_bool("stats", false);

    if (flags.get_bool("tcp", false)) {
        return cmd_serve_tcp(flags, cfg.service);
    }

    // SIGTERM/SIGINT drain the JSONL path too: the handler (no SA_RESTART)
    // interrupts the blocking getline, the stop flag ends the session, and
    // everything already submitted is answered before exit.
    auto& sig = net::ShutdownSignal::install();
    cfg.stop = &sig.flag();

    std::ifstream fin;
    const std::string in_path = flags.get_string("in", "");
    if (!in_path.empty()) {
        fin.open(in_path);
        if (!fin) {
            std::cerr << "serve: cannot open --in=" << in_path << "\n";
            return 1;
        }
    }
    std::ofstream fout;
    const std::string out_path = flags.get_string("out", "");
    if (!out_path.empty()) {
        fout.open(out_path);
        if (!fout) {
            std::cerr << "serve: cannot open --out=" << out_path << "\n";
            return 1;
        }
    }
    std::istream& in = in_path.empty() ? std::cin : fin;
    std::ostream& out = out_path.empty() ? std::cout : fout;

    const auto summary = service::serve_jsonl(in, out, cfg);
    if (flags.get_bool("summary", false)) {
        // Human-readable wrap-up on stderr so stdout stays pure JSONL.
        std::cerr << "serve: " << summary.requests << " requests, "
                  << summary.control << " control, " << summary.parse_errors
                  << " malformed; ok=" << summary.stats.ok
                  << " overloaded=" << summary.stats.rejected_overload
                  << " deadline=" << summary.stats.deadline_exceeded
                  << " errors=" << summary.stats.internal_errors
                  << "; cache hit rate "
                  << util::Table::fmt(100.0 * summary.stats.cache_hit_rate(),
                                      1)
                  << "%\n";
    }
    return summary.stats.internal_errors == 0 ? 0 : 2;
}

int cmd_route(const util::Flags& flags) {
    auto& sig = net::ShutdownSignal::install();
    net::RouterConfig cfg;
    cfg.host = flags.get_string("host", cfg.host);
    cfg.port = flags.get_int("port", 0);
    cfg.shards = flags.get_int("shards", 0);
    cfg.shard_workers = static_cast<std::size_t>(
        flags.get_int("shard-workers", 0));
    cfg.repo_dir = flags.get_string("repo-dir", "");
    {
        std::stringstream ss(flags.get_string("endpoints", ""));
        std::string tok;
        while (std::getline(ss, tok, ',')) {
            if (!tok.empty()) cfg.endpoints.push_back(std::stoi(tok));
        }
    }
    cfg.stop = &sig.flag();
    cfg.wake_fd = sig.wake_fd();
    if (flags.get_bool("announce", false)) {
        cfg.on_listening = [](int port) {
            std::cout << "LISTENING " << port << "\n" << std::flush;
        };
    } else {
        cfg.on_listening = [](int port) {
            std::cerr << "route: listening on tcp port " << port << "\n";
        };
    }

    net::Router router(std::move(cfg));
    const auto res = router.run();
    std::cerr << "route: drained; " << res.transport.requests
              << " requests forwarded, " << res.transport.responses
              << " responses returned, "
              << res.transport.retried_after_shard_death
              << " retried after shard death, "
              << res.transport.shard_respawns << " shard respawns\n";
    return res.clean_shutdown ? 0 : 2;
}

int cmd_loadgen(const util::Flags& flags) {
    net::LoadgenConfig cfg;
    const std::string connect = flags.get_string("connect", "");
    if (!connect.empty()) {
        const std::size_t colon = connect.rfind(':');
        if (colon == std::string::npos) {
            std::cerr << "loadgen: --connect must be HOST:PORT\n";
            return 1;
        }
        cfg.host = connect.substr(0, colon);
        cfg.port = std::stoi(connect.substr(colon + 1));
    } else {
        cfg.port = flags.get_int("port", 0);
    }
    cfg.connections = flags.get_int("connections", cfg.connections);
    cfg.pipeline = flags.get_int("pipeline", cfg.pipeline);
    cfg.requests = flags.get_int("requests", cfg.requests);
    cfg.instances = flags.get_int("instances", cfg.instances);
    cfg.seed = static_cast<std::uint64_t>(
        flags.get_int64("seed", static_cast<std::int64_t>(cfg.seed)));
    cfg.length_prefixed = !flags.get_bool("newline", false);
    {
        std::stringstream ss(flags.get_string("algos", ""));
        std::string tok;
        while (std::getline(ss, tok, ',')) {
            if (!tok.empty()) cfg.planners.push_back(tok);
        }
    }

    const std::string emit = flags.get_string("emit-jsonl", "");
    if (!emit.empty()) {
        // Reference stream for the byte-identity check: the same logical
        // workload, pipeable through the JSONL `uavdc serve` path.
        std::ofstream f(emit);
        if (!f) {
            std::cerr << "loadgen: cannot open --emit-jsonl=" << emit << "\n";
            return 1;
        }
        f << net::loadgen_workload_jsonl(cfg);
        std::cerr << "loadgen: wrote reference workload to " << emit << "\n";
        if (cfg.port <= 0) return 0;
    }
    if (cfg.port <= 0) {
        std::cerr << "loadgen: --connect or --port is required\n";
        return 1;
    }

    const std::string capture_out = flags.get_string("capture-out", "");
    cfg.capture = !capture_out.empty();
    const auto res = net::run_loadgen(cfg);
    if (!capture_out.empty()) {
        std::ofstream f(capture_out);
        if (!f) {
            std::cerr << "loadgen: cannot open --capture-out=" << capture_out
                      << "\n";
            return 1;
        }
        for (const auto& payload : res.responses) f << payload << '\n';
    }
    std::cout << net::to_json(res).dump(2) << "\n";
    return (!res.timed_out && res.errors == 0 &&
            res.received == static_cast<std::uint64_t>(cfg.requests))
               ? 0
               : 2;
}

int cmd_serve_gen(const util::Flags& flags) {
    service::WorkloadGenConfig cfg;
    cfg.requests = flags.get_int("requests", cfg.requests);
    cfg.instances = flags.get_int("instances", cfg.instances);
    cfg.seed = static_cast<std::uint64_t>(
        flags.get_int64("seed", static_cast<std::int64_t>(cfg.seed)));
    cfg.control_verbs = !flags.get_bool("no-control", false);
    {
        std::stringstream ss(flags.get_string("algos", ""));
        std::string tok;
        while (std::getline(ss, tok, ',')) {
            if (!tok.empty()) cfg.planners.push_back(tok);
        }
    }
    const std::string text = service::generate_jsonl_workload(cfg);
    const std::string out = flags.get_string("out", "");
    if (out.empty()) {
        std::cout << text;
        return 0;
    }
    std::ofstream f(out);
    if (!f) {
        std::cerr << "serve-gen: cannot open --out=" << out << "\n";
        return 1;
    }
    f << text;
    std::cout << "wrote " << out << "\n";
    return 0;
}

int cmd_render(const util::Flags& flags) {
    const auto inst = io::load_instance(flags.get_string("instance", ""));
    const std::string out = flags.get_string("out", "");
    if (out.empty()) {
        std::cerr << "render: --out is required\n";
        return 1;
    }
    if (flags.has("plan")) {
        const auto plan = io::load_plan(flags.get_string("plan", ""));
        io::save_svg(out, inst, &plan);
    } else {
        io::save_svg(out, inst, nullptr);
    }
    std::cout << "wrote " << out << "\n";
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    const util::Flags flags(argc, argv);
    if (flags.positional().empty()) return usage();
    const std::string& cmd = flags.positional()[0];
    try {
        if (cmd == "generate") return cmd_generate(flags);
        if (cmd == "plan") return cmd_plan(flags);
        if (cmd == "eval") return cmd_eval(flags);
        if (cmd == "sim") return cmd_sim(flags);
        if (cmd == "validate") return cmd_validate(flags);
        if (cmd == "compare") return cmd_compare(flags);
        if (cmd == "robustness") return cmd_robustness(flags);
        if (cmd == "conformance") return cmd_conformance(flags);
        if (cmd == "sensitivity") return cmd_sensitivity(flags);
        if (cmd == "render") return cmd_render(flags);
        if (cmd == "serve") return cmd_serve(flags);
        if (cmd == "route") return cmd_route(flags);
        if (cmd == "loadgen") return cmd_loadgen(flags);
        if (cmd == "serve-gen") return cmd_serve_gen(flags);
        std::cerr << "unknown command '" << cmd << "'\n";
        return usage();
    } catch (const std::exception& ex) {
        std::cerr << "error: " << ex.what() << "\n";
        return 2;
    }
}
