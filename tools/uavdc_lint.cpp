// uavdc_lint — domain lint gate for invariants clang-tidy cannot express:
// contract-macro discipline, seeded determinism, module layering, FP
// reduction order, and checked integer narrowing.
//
// Usage:
//   uavdc_lint [--list-rules] [--format=text|json|sarif]
//              [--baseline=FILE] [--write-baseline=FILE] [--dot=FILE]
//              [path...]
//
// Each path may be a file or a directory (linted recursively). With no
// paths it lints src/ tools/ bench/ relative to the current directory.
//
// --format=sarif emits a SARIF 2.1.0 log for code-scanning upload;
// --baseline=FILE suppresses findings recorded in FILE and gates only on
// NEW findings; --write-baseline=FILE records the current findings and
// exits 0 (the refresh path); --dot=FILE writes the module include graph
// as Graphviz, with layering violations in red.
//
// Exit code 0 when clean (or no new findings vs the baseline), 1 when the
// gate fails, 2 on usage errors or an unreadable baseline.

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "uavdc/lint/include_graph.hpp"
#include "uavdc/lint/linter.hpp"
#include "uavdc/lint/report.hpp"

namespace {

bool take_value(const std::string& arg, const std::string& flag,
                std::string* value) {
    if (arg.rfind(flag + "=", 0) != 0) return false;
    *value = arg.substr(flag.size() + 1);
    return true;
}

bool write_file(const std::string& path, const std::string& contents) {
    std::ofstream out(path, std::ios::binary);
    out << contents;
    return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
    std::vector<std::string> roots;
    std::string format = "text";
    std::string baseline_path;
    std::string write_baseline_path;
    std::string dot_path;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--list-rules") {
            for (const auto& rule : uavdc::lint::rules()) {
                std::cout << rule.id << " " << rule.rule << ": "
                          << rule.description << "\n";
            }
            return 0;
        }
        if (arg == "--help" || arg == "-h") {
            std::cout
                << "usage: uavdc_lint [--list-rules] "
                   "[--format=text|json|sarif] [--baseline=FILE] "
                   "[--write-baseline=FILE] [--dot=FILE] [path...]\n";
            return 0;
        }
        if (take_value(arg, "--format", &format) ||
            take_value(arg, "--baseline", &baseline_path) ||
            take_value(arg, "--write-baseline", &write_baseline_path) ||
            take_value(arg, "--dot", &dot_path)) {
            continue;
        }
        if (arg.rfind("--", 0) == 0) {
            std::cerr << "uavdc_lint: unknown option " << arg << "\n";
            return 2;
        }
        roots.push_back(arg);
    }
    if (format != "text" && format != "json" && format != "sarif") {
        std::cerr << "uavdc_lint: unknown --format '" << format
                  << "' (expected text|json|sarif)\n";
        return 2;
    }
    if (roots.empty()) roots = {"src", "tools", "bench"};

    const auto analysis = uavdc::lint::analyze_tree(roots);

    if (!dot_path.empty() &&
        !write_file(dot_path, uavdc::lint::to_dot(analysis.graph))) {
        std::cerr << "uavdc_lint: cannot write --dot file " << dot_path
                  << "\n";
        return 2;
    }

    if (!write_baseline_path.empty()) {
        const auto baseline = uavdc::lint::make_baseline(analysis.findings);
        if (!write_file(write_baseline_path,
                        uavdc::lint::serialize_baseline(baseline))) {
            std::cerr << "uavdc_lint: cannot write baseline "
                      << write_baseline_path << "\n";
            return 2;
        }
        std::cerr << "uavdc_lint: recorded " << analysis.findings.size()
                  << " finding(s) into " << write_baseline_path << "\n";
        return 0;
    }

    // The gate set: everything, or only what the baseline does not cover.
    std::vector<uavdc::lint::Finding> gated = analysis.findings;
    if (!baseline_path.empty()) {
        std::ifstream in(baseline_path, std::ios::binary);
        if (!in) {
            std::cerr << "uavdc_lint: cannot read baseline " << baseline_path
                      << "\n";
            return 2;
        }
        std::ostringstream buf;
        buf << in.rdbuf();
        try {
            gated = uavdc::lint::new_findings(
                analysis.findings, uavdc::lint::parse_baseline(buf.str()));
        } catch (const std::exception& e) {
            std::cerr << "uavdc_lint: " << e.what() << "\n";
            return 2;
        }
    }

    if (format == "json") {
        std::cout << uavdc::lint::to_json(gated);
    } else if (format == "sarif") {
        std::cout << uavdc::lint::to_sarif(gated);
    } else {
        std::cout << uavdc::lint::to_text(gated);
    }
    if (!gated.empty() && !baseline_path.empty() && format == "text") {
        std::cout << gated.size() << " NEW finding(s) not covered by "
                  << baseline_path << "\n";
    }
    return gated.empty() ? 0 : 1;
}
