// uavdc_lint — domain lint gate for invariants clang-tidy cannot express.
//
// Usage:
//   uavdc_lint [--list-rules] [path...]
//
// Each path may be a file or a directory (linted recursively). With no paths
// it lints src/ tools/ bench/ relative to the current directory. Exit code 0
// when clean, 1 when any finding fires, 2 on usage errors.

#include <iostream>
#include <string>
#include <vector>

#include "uavdc/lint/linter.hpp"

int main(int argc, char** argv) {
    std::vector<std::string> roots;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--list-rules") {
            for (const auto& rule : uavdc::lint::rules()) {
                std::cout << rule.id << " " << rule.rule << ": "
                          << rule.description << "\n";
            }
            return 0;
        }
        if (arg == "--help" || arg == "-h") {
            std::cout << "usage: uavdc_lint [--list-rules] [path...]\n";
            return 0;
        }
        if (arg.rfind("--", 0) == 0) {
            std::cerr << "uavdc_lint: unknown option " << arg << "\n";
            return 2;
        }
        roots.push_back(arg);
    }
    if (roots.empty()) roots = {"src", "tools", "bench"};

    const auto findings = uavdc::lint::lint_tree(roots);
    for (const auto& f : findings) {
        std::cout << uavdc::lint::to_string(f) << "\n";
    }
    if (!findings.empty()) {
        std::cout << findings.size() << " finding(s); see --list-rules for "
                  << "what each rule protects.\n";
        return 1;
    }
    return 0;
}
